"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — run one scheme on a generated trace and print metrics
  (``--trace out.jsonl`` additionally exports a structured event trace;
  ``--faults PLAN`` injects a fault plan, ``--node-mtbf``/
  ``--node-repair-time``/``--failure-seed`` drive the legacy Poisson
  node-failure knobs).
* ``serve``    — run the same scheduling kernel as a wall-clock asyncio
  daemon: jobs arrive over a JSONL TCP API (submit/query/cancel/scale,
  streaming event feed), requests batch into scheduling epochs, and
  ``--state-dir`` adds journal+snapshot+WAL durability so a killed
  daemon restarts without losing an acked job (see docs/SERVING.md).
* ``chaos``    — run one scheme under a named or file-based fault plan
  and print the resilience snapshot (goodput, lost GPU-hours by cause,
  time-to-recover).  Seeded: identical arguments give byte-identical
  ``--json`` output.
* ``whatif``   — run a loaning scheme up to a point in time, then price
  a hypothetical reclaim plan (preemptions, lost GPU-hours, per-server
  preemption cost) as a dry run that provably leaves the simulation
  untouched.
* ``check``    — conformance-check the schedulers against the
  correctness oracles (``repro.oracle``): differential sweeps against
  brute-force references, metamorphic properties, and mini-scenario
  replays through every registered scheduler in both view modes.  Exits
  non-zero on the first divergence, printing a minimized repro script.
* ``compare``  — run several schemes on the same trace, print a table.
* ``trace``    — generate a synthetic trace and describe (or export) it.
* ``inspect``  — summarize an exported event trace (phase timings,
  preemption causes, reclaim timeline); ``--diff A B`` compares two
  traces and reports the first divergence plus metric deltas.
* ``why``      — narrate the causal chain behind a job's lifecycle from
  an exported trace: which plan dispatched/preempted it, what triggered
  that epoch, which fault was behind it.
* ``report``   — with a trace file, render a deterministic markdown run
  report (JCT/queue-wait percentiles, utilization, loan/reclaim and
  preemption timelines, decision ledger, phase call counts); without
  one, run the headline schemes and check shapes against the paper.
* ``paper``    — print the paper's published numbers for a table.

Everything is seeded; two invocations with the same arguments produce
identical numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import paper
from repro.analysis import compare_to_paper, render_report
from repro.ioutil import atomic_write, atomic_write_text
from repro.obs import (
    Observability,
    TraceFormatError,
    configure_logging,
    inspect_trace,
)
from repro.scenarios import (
    SCENARIOS,
    SCHEMES,
    build_sim,
    default_setup,
    run_scheme,
)
from repro.simulator.metrics import SimulationMetrics, reduction
from repro.traces.io import load_workload
from repro.traces.workload import TraceConfig, generate_workload


def _add_log_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error"],
        help="enable library logging at this level (silent by default)",
    )


def _add_setup_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=600,
                        help="number of jobs to generate")
    parser.add_argument("--days", type=float, default=2.0,
                        help="trace span in days")
    parser.add_argument("--training-servers", type=int, default=24)
    parser.add_argument("--inference-servers", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--load", type=float, default=1.0,
                        help="offered load relative to cluster capacity")
    _add_log_arg(parser)


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--node-mtbf", type=float, default=None, metavar="SECONDS",
        help="per-node mean time between failures; arms a Poisson "
             "node-failure process (off by default)",
    )
    parser.add_argument(
        "--node-repair-time", type=float, default=3600.0, metavar="SECONDS",
        help="how long a failed node stays down before recovering",
    )
    parser.add_argument(
        "--failure-seed", type=int, default=None,
        help="RNG seed for fault injection; defaults to the plan's own "
             "seed (or 0 for --node-mtbf)",
    )


def _fault_overrides(args) -> dict:
    """SimulationConfig overrides from the fault-injection CLI knobs."""
    overrides: dict = {}
    plan_spec = getattr(args, "faults", None) or getattr(args, "plan", None)
    if plan_spec:
        from repro.faults import resolve_plan

        plan = resolve_plan(plan_spec)
        if args.failure_seed is not None:
            plan = plan.with_seed(args.failure_seed)
        overrides["fault_plan"] = plan
    if args.node_mtbf:
        overrides["node_mtbf"] = args.node_mtbf
        overrides["node_repair_time"] = args.node_repair_time
    if args.failure_seed is not None:
        overrides["failure_seed"] = args.failure_seed
    return overrides


def _add_recovery_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="durable-state directory (snapshots + WAL); enables "
             "checkpointing",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=1800.0, metavar="SECONDS",
        help="simulated seconds between snapshots (default: 1800)",
    )
    parser.add_argument(
        "--activities-out", default=None, metavar="FILE",
        help="write the Activity log, one line per event, for "
             "byte-comparison across runs",
    )


def _make_setup(args):
    return default_setup(
        num_jobs=args.jobs,
        days=args.days,
        training_servers=args.training_servers,
        inference_servers=args.inference_servers,
        seed=args.seed,
        target_load=args.load,
    )


def _metrics_dict(metrics: SimulationMetrics) -> dict:
    q = metrics.queuing_summary()
    j = metrics.jct_summary()
    return {
        "queuing": {"mean": q.mean, "median": q.median, "p95": q.p95},
        "jct": {"mean": j.mean, "median": j.median, "p95": j.p95},
        "usage_training": metrics.training_usage.mean(),
        "usage_overall": metrics.overall_usage.mean(),
        "preemption_ratio": metrics.preemption_ratio,
        "scale_ops": metrics.scale_ops,
        "loan_ops": len(metrics.loan_ops),
        "reclaim_ops": len(metrics.reclaim_ops),
        "completed": metrics.completion_ratio(),
    }


def _print_metrics(name: str, metrics: SimulationMetrics) -> None:
    data = _metrics_dict(metrics)
    print(f"[{name}]")
    print(f"  queuing  mean {data['queuing']['mean']:>10,.1f} s   "
          f"median {data['queuing']['median']:>8,.1f}   "
          f"p95 {data['queuing']['p95']:>10,.1f}")
    print(f"  jct      mean {data['jct']['mean']:>10,.1f} s   "
          f"median {data['jct']['median']:>8,.1f}   "
          f"p95 {data['jct']['p95']:>10,.1f}")
    print(f"  usage    training {data['usage_training']:.3f}   "
          f"overall {data['usage_overall']:.3f}")
    print(f"  events   preemption ratio {data['preemption_ratio']:.3f}   "
          f"scale ops {data['scale_ops']}   loans {data['loan_ops']}   "
          f"reclaims {data['reclaim_ops']}")


def _print_plan_summary(sim) -> None:
    """Summarize the recorded decision plans of a finished run."""
    plans = sim.plan_log
    executor = sim.executor
    print(f"  plans    applied {executor.plans_applied}   "
          f"rejected {executor.plans_rejected}   "
          f"actions {executor.actions_applied}   "
          f"recorded {len(plans)} non-empty")
    if not plans:
        return
    by_kind: dict = {}
    preemptions = 0
    gpus_moved = 0
    for entry in plans:
        for kind, count in entry.get("by_kind", {}).items():
            by_kind[kind] = by_kind.get(kind, 0) + count
        pricing = entry.get("pricing") or {}
        preemptions += pricing.get("preemptions", 0)
        gpus_moved += pricing.get("gpus_moved", 0)
    kinds = "   ".join(f"{k} {n}" for k, n in sorted(by_kind.items()))
    print(f"  actions  {kinds}")
    print(f"  cost     preemptions {preemptions}   "
          f"gpus moved {gpus_moved}")
    last = plans[-1]
    print(f"  last     t={last['now']:,.0f} policy={last['policy']} "
          f"{len(last['actions'])} action(s)")


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _write_activities(sim, path: str) -> None:
    """Dump the Activity log, one line per event, in the exact format the
    equivalence digest hashes — so `cmp a.log b.log` is the byte-identity
    check.  Written atomically: a kill mid-dump leaves no partial file."""
    with atomic_write(path) as fh:
        for a in sim.activities:
            fh.write(f"{a.time!r}|{a.kind.value}|{a.job_id!r}|{a.detail!r}\n")
    print(f"wrote {len(sim.activities)} activity lines to {path}")


def _print_recovery_summary(sim) -> None:
    registry = sim.obs.registry
    wal = sim.recovery.wal if sim.recovery is not None else None
    print(f"  durable  checkpoints {registry.counter('recovery.checkpoints').value}   "
          f"recoveries {registry.counter('recovery.recoveries').value}   "
          f"wal replayed {registry.counter('recovery.wal_entries_replayed').value}"
          + (f"   wal appended {wal.appended}" if wal is not None else ""))


def _run_interruptible(sim):
    """Run the simulation, stopping gracefully on SIGINT/SIGTERM.

    The first signal stops the engine at the next event boundary — the
    run returns normally with whatever completed, so the caller still
    writes traces and artifacts (atomically, via :mod:`repro.ioutil`)
    instead of dying with a traceback and half a file.  A second signal
    falls back to the default behavior.

    Returns ``(metrics, signum)`` where ``signum`` is None for an
    uninterrupted run.
    """
    import signal

    caught: dict = {}

    def _stop(signum, frame):
        if caught:
            raise KeyboardInterrupt
        caught["signum"] = signum
        sim.engine.stop()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _stop)
        except ValueError:  # not the main thread (embedded use)
            pass
    try:
        metrics = sim.run()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return metrics, caught.get("signum")


def cmd_run(args) -> int:
    import signal

    from repro.faults.crash import SimulatedCrash

    if args.resume:
        if not args.checkpoint_dir:
            print("--resume requires --checkpoint-dir", file=sys.stderr)
            return 2
        return _resume_run(args, args.checkpoint_dir)
    setup = _make_setup(args)
    specs = None
    if getattr(args, "replay", None):
        specs = load_workload(
            args.replay, cluster_gpus=args.training_servers * 8
        ).specs
    obs = None
    if getattr(args, "trace", None):
        obs = Observability.enabled()
    sim_overrides = _fault_overrides(args)
    if getattr(args, "view_backend", None):
        sim_overrides["view_backend"] = args.view_backend
    explain = getattr(args, "explain", False)
    if explain:
        sim_overrides["record_plans"] = True
    if args.activities_out:
        sim_overrides["record_activities"] = True
    market = None
    if getattr(args, "clusters", None):
        from repro.market import resolve_market

        try:
            market = resolve_market(args.clusters)
        except (ValueError, OSError) as exc:
            print(f"bad --clusters: {exc}", file=sys.stderr)
            return 2
    sim = build_sim(
        setup, args.scheme, scenario=args.scenario, seed=args.seed,
        scaling_model=args.scaling_model, specs=specs, obs=obs,
        sim_overrides=sim_overrides or None, market=market,
    )
    if args.checkpoint_dir:
        _attach_recovery(sim, args)
    elif args.crash_at is not None:
        print("--crash-at requires --checkpoint-dir (there would be "
              "nothing to recover from)", file=sys.stderr)
        return 2
    try:
        metrics, interrupted = _run_interruptible(sim)
    except SimulatedCrash as exc:
        print(f"simulated crash: {exc}; recover with "
              f"`repro recover {args.checkpoint_dir}`", file=sys.stderr)
        return 3
    has_faults = any(
        k in sim_overrides for k in ("fault_plan", "node_mtbf")
    )
    snapshot = None
    if market is not None and hasattr(sim.pair, "market_snapshot"):
        snapshot = sim.pair.market_snapshot()
    if args.json:
        data = _metrics_dict(metrics)
        if has_faults:
            from repro.faults import resilience_snapshot

            data["resilience"] = resilience_snapshot(
                metrics, plan=sim_overrides.get("fault_plan")
            )
        if snapshot is not None:
            data["market"] = snapshot
        if explain:
            data["plans"] = sim.plan_log
        print(json.dumps(data, indent=2,
                         sort_keys="resilience" in data))
    else:
        _print_metrics(args.scheme, metrics)
        if has_faults:
            print(f"  faults   node failures {metrics.node_failures}   "
                  f"preemptions {metrics.preemptions}")
        if snapshot is not None:
            lenders = ", ".join(snapshot["lenders_used"]) or "none"
            print(f"  market   {len(snapshot['inference_clusters'])} lenders"
                  f" x {len(snapshot['training_regions'])} regions   "
                  f"contracts {snapshot['contracts_opened']}   "
                  f"early recalls {snapshot['early_recalls']}   "
                  f"penalties {snapshot['penalties_accrued']}")
            print(f"  lenders  {lenders}")
        if explain:
            _print_plan_summary(sim)
    if obs is not None:
        records = obs.export_trace(args.trace, format=args.trace_format)
        print(f"wrote {records} trace records to {args.trace} "
              f"({args.trace_format}); summarize with "
              f"`repro inspect {args.trace}`")
    if args.activities_out:
        _write_activities(sim, args.activities_out)
    if sim.recovery is not None and not args.json:
        _print_recovery_summary(sim)
    if interrupted is not None:
        name = signal.Signals(interrupted).name
        print(f"interrupted ({name}) at t={sim.now:,.0f}; partial "
              f"artifacts written", file=sys.stderr)
        return 128 + interrupted
    return 0


def cmd_serve(args) -> int:
    """Run the scheduling kernel as a wall-clock daemon.

    Same kernel, same policies, same durability machinery as ``run`` —
    just driven by real time (:class:`repro.serve.WallClockDriver`)
    instead of the simulated-event engine, with jobs arriving over a
    JSONL TCP API instead of from a generated trace.
    """
    import asyncio
    import contextlib
    import signal

    from repro.cluster.cluster import (
        ClusterPair,
        make_inference_cluster,
        make_training_cluster,
    )
    from repro.scenarios import make_policy
    from repro.serve import SchedulerService
    from repro.simulator.simulation import SimulationConfig

    pair = ClusterPair(
        make_training_cluster(args.training_servers),
        make_inference_cluster(args.inference_servers),
    )
    config = SimulationConfig(
        scheduler_interval=args.epoch_interval,
        view_backend=args.view_backend,
    )
    obs = Observability.enabled() if args.trace else Observability.disabled()
    service = SchedulerService(
        pair,
        make_policy(args.scheme, seed=args.seed),
        config,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        time_scale=args.time_scale,
        state_dir=args.state_dir,
        snapshot_every_epochs=args.snapshot_every,
        obs=obs,
    )

    async def _serve() -> int:
        await service.start()
        print(f"repro serve: {args.scheme} listening on "
              f"{service.host}:{service.port} "
              f"(time_scale={args.time_scale:g}"
              + (f", state={args.state_dir}" if args.state_dir else "")
              + ")", flush=True)
        if service.recovered_jobs or service.replayed_requests:
            print(f"repro serve: recovered {service.recovered_jobs} job(s) "
                  f"from snapshot, replayed {service.replayed_requests} "
                  f"journaled request(s)", flush=True)
        loop = asyncio.get_running_loop()
        received: set = set()

        def _on_signal(signum):
            received.add(signum)
            service.shutdown_requested.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, _on_signal, sig)
        server_task = asyncio.ensure_future(service.serve_forever())
        await service.shutdown_requested.wait()
        # SIGTERM is the orderly way down: stop admission, let the
        # cluster empty, then snapshot.  SIGINT (and the shutdown op)
        # stop immediately — the final snapshot plus the request
        # journal make the stop lossless either way.
        if signal.SIGTERM in received and args.drain_timeout > 0:
            print("repro serve: draining ...", flush=True)
            drained = await service.drain(timeout=args.drain_timeout)
            print("repro serve: drain "
                  + ("complete" if drained else "timed out"), flush=True)
        await service.stop()
        server_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await server_task
        if args.trace:
            records = obs.export_trace(args.trace, format="jsonl")
            print(f"wrote {records} trace records to {args.trace}",
                  flush=True)
        return 0

    return asyncio.run(_serve())


def _attach_recovery(sim, args):
    from repro.faults.crash import CrashInjector, CrashPoint
    from repro.recovery import RecoveryManager

    crash = None
    if args.crash_at is not None:
        crash = CrashInjector(
            [CrashPoint(args.crash_at, args.crash_barrier)]
        )
    manager = RecoveryManager(
        args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        crash=crash,
    )
    manager.attach(sim)
    return manager


def _resume_run(args, directory: str) -> int:
    from repro.recovery import RecoveryError, RecoveryManager

    try:
        sim = RecoveryManager.recover(directory)
    except RecoveryError as exc:
        print(f"cannot recover: {exc}", file=sys.stderr)
        return 2
    metrics = sim.resume()
    if args.json:
        print(json.dumps(_metrics_dict(metrics), indent=2))
    else:
        _print_metrics("recovered", metrics)
        _print_recovery_summary(sim)
    if getattr(args, "activities_out", None):
        _write_activities(sim, args.activities_out)
    return 0


def cmd_recover(args) -> int:
    """Restore a killed run from its checkpoint directory and finish it."""
    return _resume_run(args, args.directory)


def cmd_chaos(args) -> int:
    """Run one scheme under a fault plan and report resilience metrics."""
    from repro.faults import BUILTIN_PLANS, resilience_snapshot, resolve_plan

    if args.list_plans:
        for name, plan in sorted(BUILTIN_PLANS.items()):
            parts = []
            if plan.process:
                parts.append(f"mtbf {plan.process.mtbf / 3600:.0f}h")
            if plan.outages:
                parts.append(f"{len(plan.outages)} outage(s)")
            if plan.stragglers:
                parts.append(f"{len(plan.stragglers)} straggler(s)")
            if plan.flash_crowds:
                parts.append(f"{len(plan.flash_crowds)} flash crowd(s)")
            if plan.predictor_outages or plan.predictor_biases:
                parts.append("predictor faults")
            if plan.launch_failures:
                parts.append(
                    f"launch p={plan.launch_failures.probability:g}"
                )
            if plan.crashes:
                parts.append(f"{len(plan.crashes)} process crash(es)")
            print(f"  {name:<14} {', '.join(parts) or 'no faults'}")
        return 0

    plan = resolve_plan(args.plan)
    if args.failure_seed is not None:
        plan = plan.with_seed(args.failure_seed)
    setup = _make_setup(args)
    obs = Observability.enabled() if args.trace else None
    if plan.crashes:
        sim, metrics = _run_with_crashes(args, setup, plan, obs)
    else:
        sim = None
        metrics = run_scheme(
            setup, args.scheme, scenario=args.scenario, seed=args.seed,
            scaling_model=args.scaling_model,
            sim_overrides={"fault_plan": plan}, obs=obs,
        )
    snap = resilience_snapshot(metrics, plan=plan)
    payload = json.dumps(snap, indent=2, sort_keys=True)
    if args.out:
        atomic_write_text(args.out, payload + "\n")
        print(f"wrote resilience snapshot to {args.out}")
    if args.json:
        print(payload)
    else:
        good = snap["goodput"]
        print(f"[{args.scheme} under plan {plan.name!r} "
              f"(seed {plan.seed})]")
        print(f"  goodput  {good['goodput_fraction']:.4f}   "
              f"useful {good['useful_gpu_hours']:,.1f} GPUh   "
              f"wasted {good['wasted_gpu_hours']:,.1f} GPUh")
        lost = snap["lost_gpu_hours_by_cause"]
        if lost:
            print("  lost GPU-hours by cause: "
                  + "   ".join(f"{c} {h:,.1f}" for c, h in sorted(lost.items())))
        by_cause = snap["preemptions_by_cause"]
        print(f"  events   node failures {snap['node_failures']}   "
              f"no-ops {snap['node_failure_noops']}   preemptions "
              + (", ".join(f"{c}={n}" for c, n in sorted(by_cause.items()))
                 or "0"))
        ttr = snap["time_to_restart_s"]
        if ttr["count"]:
            print(f"  recover  restarts {ttr['count']}   "
                  f"mean {ttr['mean']:,.1f} s   p95 {ttr['p95']:,.1f} s")
        launch = snap["launch"]
        if launch["retries"] or launch["failures"]:
            print(f"  launch   retries {launch['retries']}   "
                  f"exhausted {launch['failures']}")
        if snap["degraded_ticks"]:
            print(f"  loaning  degraded ticks {snap['degraded_ticks']}")
        rec = snap["recovery"]
        if rec["recoveries"] or rec["checkpoints"]:
            ttrr = rec["time_to_recover_s"]
            mean = f"   mean {ttrr['mean'] * 1000:,.1f} ms" \
                if ttrr["count"] else ""
            print(f"  durable  checkpoints {rec['checkpoints']}   "
                  f"recoveries {rec['recoveries']}   "
                  f"wal replayed {rec['wal_entries_replayed']}   "
                  f"snapshot {rec['snapshot_bytes']:,.0f} B{mean}")
        jct = snap["jct"]
        print(f"  jct      mean {jct['mean']:>10,.1f} s   "
              f"p95 {jct['p95']:>10,.1f}   completed {snap['completed']:.3f}"
              f"   audits {snap['audits']}")
    if obs is not None:
        # after a crash-recovery loop the live bundle is the restored
        # sim's, not the one this process originally created
        bundle = sim.obs if sim is not None else obs
        records = bundle.export_trace(args.trace, format=args.trace_format)
        print(f"wrote {records} trace records to {args.trace}")
    return 0


def _run_with_crashes(args, setup, plan, obs):
    """Chaos harness for plans with a process-kill schedule: run under a
    checkpointing RecoveryManager, and on every simulated crash discard
    the dead simulation and recover from disk — in-process, so one chaos
    invocation reports the whole kill-recover-resume story."""
    import shutil
    import tempfile

    from repro.faults.crash import CrashInjector, SimulatedCrash
    from repro.recovery import RecoveryError, RecoveryManager

    workdir = args.checkpoint_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    injector = CrashInjector(plan.crashes)

    def fresh_sim():
        sim = build_sim(
            setup, args.scheme, scenario=args.scenario, seed=args.seed,
            scaling_model=args.scaling_model,
            sim_overrides={"fault_plan": plan}, obs=obs,
        )
        manager = RecoveryManager(
            workdir, checkpoint_every=args.checkpoint_every, crash=injector
        )
        manager.attach(sim)
        return sim

    sim = fresh_sim()
    resumed = False
    try:
        while True:
            try:
                metrics = sim.resume() if resumed else sim.run()
                return sim, metrics
            except SimulatedCrash as exc:
                print(f"  [chaos] {exc}; recovering "
                      f"({len(injector.remaining())} kill(s) left)")
                try:
                    sim = RecoveryManager.recover(workdir)
                    resumed = True
                except RecoveryError:
                    # died before the first checkpoint: start over (the
                    # WAL survives; the rerun replays it as no-ops)
                    sim = fresh_sim()
                    resumed = False
                else:
                    # the surviving schedule lives in the injector this
                    # process kept; a restored sim has no crash armed
                    sim.recovery.arm_crash(injector)
    finally:
        if not args.checkpoint_dir:
            shutil.rmtree(workdir, ignore_errors=True)


def cmd_whatif(args) -> int:
    """Price a hypothetical reclaim plan mid-run without applying it.

    Runs the scheme up to ``--at`` seconds, asks the orchestrator to
    plan reclaiming ``--demand`` on-loan servers, and dry-runs the plan
    through the executor: the output is what the reclaim *would* cost
    (preemptions, per-server preemption cost, collateral GPUs) with the
    simulation state provably untouched.
    """
    wiring = SCHEMES[args.scheme]
    if not wiring.get("loaning", False):
        print(f"scheme {args.scheme!r} has no resource orchestrator; "
              f"pick a loaning scheme (e.g. lyra, lyra_loaning)",
              file=sys.stderr)
        return 2
    setup = _make_setup(args)
    sim = build_sim(setup, args.scheme, scenario=args.scenario,
                    seed=args.seed)
    sim.run(until=args.at)
    loaned = sim.pair.loaned_count
    before = (
        len(sim.activities), len(sim.running), len(sim.pending),
        loaned, sim.metrics.scale_ops,
    )
    plan = sim.orchestrator.plan_reclaim(sim, args.demand)
    receipt = sim.executor.apply(plan, dry_run=True)
    after = (
        len(sim.activities), len(sim.running), len(sim.pending),
        sim.pair.loaned_count, sim.metrics.scale_ops,
    )
    if before != after:
        raise AssertionError(
            f"dry-run mutated the simulation: {before} -> {after}")
    sim.rm.verify_books()
    if sim.view is not None:
        sim.view.assert_consistent()
    payload = {
        "at": sim.now,
        "scheme": args.scheme,
        "loaned_servers": loaned,
        "demand": args.demand,
        "plan": plan.to_dict(),
        "pricing": receipt.pricing,
        "state_changed": False,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"[whatif {args.scheme} @ t={sim.now:,.0f}s]  "
          f"{loaned} server(s) on loan, reclaim demand {args.demand}")
    pricing = receipt.pricing
    if not plan.actions:
        print("  plan     empty — nothing on loan to reclaim")
        return 0
    kinds = "   ".join(
        f"{k} {n}" for k, n in sorted(plan.by_kind().items())
    )
    print(f"  plan     {len(plan.actions)} action(s): {kinds}")
    print(f"  cost     preemptions {pricing['preemptions']}   "
          f"preemption cost {pricing['preemption_cost']:.4f}   "
          f"lost {pricing['lost_gpu_hours']:.4f} GPUh")
    print(f"  moves    gpus {pricing['gpus_moved']}   "
          f"servers reclaimed {pricing['servers_reclaimed']}   "
          f"jobs affected {pricing['jobs_affected']}")
    print("  state    unchanged (dry run)")
    return 0


def cmd_check(args) -> int:
    """Conformance-check the schedulers against the correctness oracles.

    Runs ``repro.oracle.run_check``: seeded differential sweeps (greedy
    and optimal reclaim vs an exhaustive job-subset search, the MCKP DP
    vs enumeration, two-phase allocation vs a first-principles
    reference), metamorphic properties (capacity monotonicity,
    permutation invariance, dry-run pricing), and mini-scenario replays
    of every requested scheme in both view modes.  A divergence prints
    a pointed report with a minimized, runnable repro script and the
    command exits 1.
    """
    from repro.oracle import run_check

    progress = None
    if args.verbose and not args.json:
        progress = lambda msg: print(f"  {msg}")  # noqa: E731
    report = run_check(
        policies=args.policy or None,
        seed=args.seed,
        n=args.n,
        replay=not args.skip_replay,
        progress=progress,
        max_divergences=args.max_divergences,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def cmd_compare(args) -> int:
    setup = _make_setup(args)
    results = {}
    for scheme in args.schemes:
        results[scheme] = run_scheme(
            setup, scheme, scenario=args.scenario, seed=args.seed,
            scaling_model=args.scaling_model,
        )
    if args.json:
        print(json.dumps(
            {name: _metrics_dict(m) for name, m in results.items()},
            indent=2,
        ))
        return 0
    print(f"{'scheme':<16}{'q mean':>10}{'q p95':>10}"
          f"{'jct mean':>11}{'jct p95':>11}{'usage':>8}{'preempt':>9}")
    for name, metrics in results.items():
        q = metrics.queuing_summary()
        j = metrics.jct_summary()
        print(f"{name:<16}{q.mean:>10,.0f}{q.p95:>10,.0f}"
              f"{j.mean:>11,.0f}{j.p95:>11,.0f}"
              f"{metrics.overall_usage.mean():>8.2f}"
              f"{metrics.preemption_ratio:>9.3f}")
    if "baseline" in results and len(results) > 1:
        base = results["baseline"]
        for name, metrics in results.items():
            if name == "baseline":
                continue
            print(f"{name} vs baseline: "
                  f"{reduction(base.queuing_summary().mean, metrics.queuing_summary().mean):.2f}x queuing, "
                  f"{reduction(base.jct_summary().mean, metrics.jct_summary().mean):.2f}x JCT")
    return 0


def cmd_trace(args) -> int:
    config = TraceConfig(
        num_jobs=args.jobs,
        days=args.days,
        cluster_gpus=args.training_servers * 8,
        seed=args.seed,
        target_load=args.load,
    )
    workload = generate_workload(config)
    stats = {
        "jobs": len(workload.specs),
        "days": config.days,
        "offered_load": workload.offered_load(),
        "fungible_fraction": workload.fungible_fraction(),
        "elastic_share": workload.elastic_share(),
        "elastic_jobs": sum(1 for s in workload.specs if s.elastic),
    }
    if args.out:
        with atomic_write(args.out) as fh:
            json.dump(
                {
                    "stats": stats,
                    "jobs": [
                        {
                            "job_id": s.job_id,
                            "submit_time": s.submit_time,
                            "duration": s.duration,
                            "min_workers": s.min_workers,
                            "max_workers": s.max_workers,
                            "gpus_per_worker": s.gpus_per_worker,
                            "elastic": s.elastic,
                            "fungible": s.fungible,
                            "heterogeneous": s.heterogeneous,
                            "checkpointing": s.checkpointing,
                            "model_family": s.model_family,
                        }
                        for s in workload.specs
                    ],
                },
                fh,
            )
        print(f"wrote {len(workload.specs)} jobs to {args.out}")
    for key, value in stats.items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float)
              else f"  {key}: {value}")
    return 0


def cmd_report(args) -> int:
    """With a trace file: render the markdown run report.  Without one:
    run the headline schemes and print the shape-verdict report."""
    if getattr(args, "trace_file", None):
        from repro.obs import report_from_file

        try:
            text = report_from_file(args.trace_file)
        except FileNotFoundError:
            print(f"no such trace file: {args.trace_file}", file=sys.stderr)
            return 2
        except TraceFormatError as exc:
            print(f"cannot parse trace: {exc}", file=sys.stderr)
            return 2
        if args.out:
            atomic_write_text(args.out, text)
            print(f"wrote report to {args.out}")
        else:
            print(text, end="")
        return 0
    setup = _make_setup(args)
    results = {
        scheme: run_scheme(setup, scheme, seed=args.seed)
        for scheme in ("baseline", "lyra", "lyra_loaning", "lyra_scaling")
    }
    checks = compare_to_paper(results)
    print(render_report(checks))
    return 0 if all(c.holds for c in checks) else 1


def cmd_why(args) -> int:
    """Narrate the causal chain behind one job's lifecycle."""
    from repro.obs import TimelineStore, render_why

    try:
        store = TimelineStore.from_file(args.trace_file)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace_file}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"cannot parse trace: {exc}", file=sys.stderr)
        return 2
    try:
        story = store.why(args.job_id, at=args.at)
    except KeyError:
        known = sorted(store.jobs)
        hint = (f" (trace covers jobs {known[0]}..{known[-1]})"
                if known else "")
        print(f"job {args.job_id} does not appear in this trace{hint}",
              file=sys.stderr)
        return 2
    print(render_why(args.job_id, story))
    return 0


def cmd_inspect(args) -> int:
    """Summarize an exported event trace, or diff two of them."""
    from repro.obs import diff_traces, load_trace, render_diff

    files = args.trace_file
    try:
        if args.diff:
            if len(files) != 2:
                print("--diff compares exactly two traces",
                      file=sys.stderr)
                return 2
            diff = diff_traces(load_trace(files[0]), load_trace(files[1]))
            print(render_diff(diff, files[0], files[1]))
            return 0 if diff.identical else 1
        if len(files) != 1:
            print("inspect takes one trace (use --diff to compare two)",
                  file=sys.stderr)
            return 2
        print(inspect_trace(files[0], top=args.top))
    except FileNotFoundError as exc:
        print(f"no such trace file: {exc.filename}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"cannot parse trace: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_paper(args) -> int:
    tables = {
        "table5": paper.TABLE5,
        "table7": paper.TABLE7,
        "table8": paper.TABLE8,
        "table9": paper.TABLE9,
        "table10": paper.TABLE10,
        "headlines": paper.HEADLINES,
        "fig1": paper.FIG1,
        "workload": paper.WORKLOAD_STATS,
    }
    data = tables.get(args.table)
    if data is None:
        print(f"unknown table {args.table!r}; choose from "
              f"{sorted(tables)}", file=sys.stderr)
        return 2
    for key, value in data.items():
        print(f"  {key}: {value}")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lyra (EuroSys '23) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scheme")
    _add_setup_args(run_p)
    run_p.add_argument("--scheme", default="lyra", choices=sorted(SCHEMES))
    run_p.add_argument("--scenario", default="basic", choices=SCENARIOS)
    run_p.add_argument(
        "--view-backend", default=None,
        choices=["legacy", "incremental", "array"],
        help="scheduling-view implementation: full scan each epoch "
             "(legacy), delta-maintained dict view (incremental, the "
             "default), or the numpy structure-of-arrays mirror (array); "
             "all three produce byte-identical logs",
    )
    run_p.add_argument("--scaling-model", default="linear",
                       choices=["linear", "sublinear20"])
    run_p.add_argument("--json", action="store_true")
    run_p.add_argument("--explain", action="store_true",
                       help="record every applied decision plan and print "
                            "a summary (with --json, the full plan log "
                            "under \"plans\")")
    run_p.add_argument("--replay",
                       help="replay a saved workload trace (.json/.csv) "
                            "instead of generating one")
    run_p.add_argument("--trace",
                       help="export a structured event trace to this path")
    run_p.add_argument("--trace-format", default="jsonl",
                       choices=["jsonl", "chrome"],
                       help="event-trace format: JSON lines, or Chrome "
                            "trace_event for about://tracing / Perfetto")
    run_p.add_argument("--faults", default=None, metavar="PLAN",
                       help="fault plan: a builtin name (see `repro chaos "
                            "--list-plans`) or a YAML/JSON plan file")
    run_p.add_argument("--clusters", default=None, metavar="SPEC",
                       help="multi-cluster capacity market: 'NxM' (N "
                            "inference lenders in staggered time zones x "
                            "M training regions) or a market-config JSON "
                            "file; the setup's hardware is split across "
                            "the regions and a capacity broker clears "
                            "the market each interval ('1x1' reproduces "
                            "the plain pair exactly)")
    _add_fault_args(run_p)
    _add_recovery_args(run_p)
    run_p.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint-dir instead of "
                            "starting a fresh run")
    run_p.add_argument("--crash-at", type=float, default=None,
                       metavar="SECONDS",
                       help="kill the run at the first matching recovery "
                            "barrier at/after this simulated time "
                            "(exit code 3; recover with `repro recover`)")
    run_p.add_argument("--crash-barrier", default="between_events",
                       choices=["between_events", "mid_epoch", "post_wal"],
                       help="barrier class for --crash-at")
    run_p.set_defaults(func=cmd_run)

    recover_p = sub.add_parser(
        "recover",
        help="restore a killed run from its checkpoint directory and "
             "finish it",
    )
    recover_p.add_argument("directory",
                           help="checkpoint directory of the dead run "
                                "(run --checkpoint-dir)")
    recover_p.add_argument("--json", action="store_true")
    recover_p.add_argument("--activities-out", default=None, metavar="FILE",
                           help="write the finished Activity log here "
                                "(byte-comparable to an uninterrupted "
                                "run's)")
    _add_log_arg(recover_p)
    recover_p.set_defaults(func=cmd_recover)

    chaos_p = sub.add_parser(
        "chaos",
        help="run one scheme under a fault plan, report resilience metrics",
    )
    _add_setup_args(chaos_p)
    chaos_p.add_argument("--plan", default="chaos", metavar="PLAN",
                         help="builtin plan name or YAML/JSON plan file "
                              "(default: chaos)")
    chaos_p.add_argument("--list-plans", action="store_true",
                         help="list builtin fault plans and exit")
    chaos_p.add_argument("--scheme", default="lyra",
                         choices=sorted(SCHEMES))
    chaos_p.add_argument("--scenario", default="basic", choices=SCENARIOS)
    chaos_p.add_argument("--scaling-model", default="linear",
                         choices=["linear", "sublinear20"])
    chaos_p.add_argument("--failure-seed", type=int, default=None,
                         help="override the plan's fault-injection seed")
    chaos_p.add_argument("--json", action="store_true",
                         help="print the resilience snapshot as JSON "
                              "(byte-stable for identical seeds)")
    chaos_p.add_argument("--out", help="also write the snapshot JSON here")
    chaos_p.add_argument("--trace",
                         help="export a structured event trace to this path")
    chaos_p.add_argument("--trace-format", default="jsonl",
                         choices=["jsonl", "chrome"])
    chaos_p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="keep the crash harness's snapshots + WAL "
                              "here (default: a temp dir, removed after)")
    chaos_p.add_argument("--checkpoint-every", type=float, default=1800.0,
                         metavar="SECONDS",
                         help="snapshot cadence for plans with process "
                              "crashes (default: 1800)")
    chaos_p.set_defaults(func=cmd_chaos)

    whatif_p = sub.add_parser(
        "whatif",
        help="price a hypothetical reclaim plan mid-run (dry run)",
    )
    _add_setup_args(whatif_p)
    whatif_p.add_argument("--scheme", default="lyra",
                          choices=sorted(SCHEMES))
    whatif_p.add_argument("--scenario", default="basic", choices=SCENARIOS)
    whatif_p.add_argument("--at", type=float, default=21600.0,
                          metavar="SECONDS",
                          help="simulation time at which to pose the "
                               "what-if (default: 6h in)")
    whatif_p.add_argument("--demand", type=int, default=2,
                          help="on-loan servers the inference side "
                               "hypothetically asks back")
    whatif_p.add_argument("--json", action="store_true")
    whatif_p.set_defaults(func=cmd_whatif)

    check_p = sub.add_parser(
        "check",
        help="conformance-check schedulers against the correctness oracles",
    )
    check_p.add_argument("--policy", action="append",
                         choices=sorted(SCHEMES), metavar="SCHEME",
                         help="scheme to replay in both view modes "
                              "(repeatable; default: every registered "
                              "scheme)")
    check_p.add_argument("--seed", type=int, default=0,
                         help="base seed; different seeds explore disjoint "
                              "instance streams")
    check_p.add_argument("--n", type=int, default=50,
                         help="instances per differential check (replay "
                              "and pricing counts scale down from it)")
    check_p.add_argument("--skip-replay", action="store_true",
                         help="skip the mini-scenario replays (instance "
                              "sweeps and metamorphic checks only)")
    check_p.add_argument("--max-divergences", type=int, default=1,
                         help="stop after this many divergences")
    check_p.add_argument("--json", action="store_true")
    check_p.add_argument("--verbose", action="store_true",
                         help="print per-stage progress lines")
    _add_log_arg(check_p)
    check_p.set_defaults(func=cmd_check)

    cmp_p = sub.add_parser("compare", help="run several schemes")
    _add_setup_args(cmp_p)
    cmp_p.add_argument("--schemes", nargs="+",
                       default=["baseline", "lyra"],
                       choices=sorted(SCHEMES))
    cmp_p.add_argument("--scenario", default="basic", choices=SCENARIOS)
    cmp_p.add_argument("--scaling-model", default="linear",
                       choices=["linear", "sublinear20"])
    cmp_p.add_argument("--json", action="store_true")
    cmp_p.set_defaults(func=cmd_compare)

    trace_p = sub.add_parser("trace", help="generate/describe a trace")
    _add_setup_args(trace_p)
    trace_p.add_argument("--out", help="write the trace as JSON")
    trace_p.set_defaults(func=cmd_trace)

    report_p = sub.add_parser(
        "report",
        help="markdown run report from a trace; without a trace, run the "
             "headline schemes and check shapes vs paper",
    )
    report_p.add_argument("trace_file", nargs="?", default=None,
                          help="trace written by run --trace; renders the "
                               "deterministic markdown run report")
    report_p.add_argument("--out", default=None,
                          help="write the markdown report to this path "
                               "instead of stdout")
    _add_setup_args(report_p)
    report_p.set_defaults(func=cmd_report)

    why_p = sub.add_parser(
        "why",
        help="narrate the causal chain behind a job's lifecycle",
    )
    why_p.add_argument("trace_file", help="trace written by run --trace")
    why_p.add_argument("job_id", type=int, help="job to explain")
    why_p.add_argument("--at", type=float, default=None, metavar="SECONDS",
                       help="explain only the state in effect at this "
                            "simulated time")
    _add_log_arg(why_p)
    why_p.set_defaults(func=cmd_why)

    inspect_p = sub.add_parser(
        "inspect", help="summarize an exported event trace"
    )
    inspect_p.add_argument("trace_file", nargs="+",
                           help="trace written by run --trace "
                                "(two traces with --diff)")
    inspect_p.add_argument("--diff", action="store_true",
                           help="compare two traces: first event-stream "
                                "divergence plus metric deltas "
                                "(exit 1 when they differ)")
    inspect_p.add_argument("--top", type=int, default=5,
                           help="how many worst-preempted jobs to list")
    _add_log_arg(inspect_p)
    inspect_p.set_defaults(func=cmd_inspect)

    serve_p = sub.add_parser(
        "serve",
        help="run the scheduler as a wall-clock daemon (JSONL TCP API)",
    )
    serve_p.add_argument("--scheme", default="lyra", choices=sorted(SCHEMES))
    serve_p.add_argument("--training-servers", type=int, default=24)
    serve_p.add_argument("--inference-servers", type=int, default=30)
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7463,
                         help="TCP port to listen on (0 picks a free "
                              "port, printed on startup)")
    serve_p.add_argument("--epoch-interval", type=float, default=0.2,
                         metavar="SECONDS",
                         help="scheduling-epoch batching window in kernel "
                              "seconds; requests landing within one "
                              "window are planned in one epoch (wall "
                              "window = this / --time-scale)")
    serve_p.add_argument("--time-scale", type=float, default=1.0,
                         help="kernel seconds per wall second; 60 runs "
                              "a day of kernel time in 24 minutes "
                              "(demos, load tests)")
    serve_p.add_argument("--max-pending", type=int, default=10_000,
                         help="admission control: submits beyond this "
                              "many pending jobs are rejected with "
                              "queue_full")
    serve_p.add_argument("--state-dir", default=None, metavar="DIR",
                         help="durable state directory (request journal, "
                              "kernel snapshots, plan WAL); restarting "
                              "on the same directory recovers every "
                              "acked job")
    serve_p.add_argument("--snapshot-every", type=int, default=1,
                         metavar="EPOCHS",
                         help="snapshot the kernel every N scheduling "
                              "epochs (with --state-dir)")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="on SIGTERM, stop admission and wait up to "
                              "this long for the cluster to empty before "
                              "the final snapshot (0 skips the drain)")
    serve_p.add_argument(
        "--view-backend", default=None,
        choices=["legacy", "incremental", "array"],
        help="scheduling-view implementation (same choices as run)",
    )
    serve_p.add_argument("--trace",
                         help="export a structured event trace here on "
                              "shutdown")
    _add_log_arg(serve_p)
    serve_p.set_defaults(func=cmd_serve)

    paper_p = sub.add_parser("paper", help="show the paper's numbers")
    paper_p.add_argument("table", help="table5|table7|table8|table9|"
                                       "table10|headlines|fig1|workload")
    paper_p.set_defaults(func=cmd_paper)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "log_level", None):
        configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
