"""Evaluation scenarios and the one-call experiment runner (§7.1).

The paper evaluates four scenarios — Basic, Advanced, Heterogeneous and
Ideal — crossed with a set of schemes (Baseline FIFO, Lyra and its
loaning-only / scaling-only variants, Opportunistic, Random/SCF
reclaiming, Gandiva, AFS, Pollux, Lyra+TunedJobs).  This module provides:

* spec transforms implementing each scenario;
* parameter-sweep transforms (elastic fraction, heterogeneous fraction,
  checkpointing fraction) used by the sensitivity figures;
* :func:`run_scheme`, which wires a workload, cluster pair, policy,
  orchestrator and simulator together and returns the metrics — the
  single entry point used by every benchmark and example.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import (
    ClusterPair,
    make_inference_cluster,
    make_training_cluster,
)
from repro.cluster.job import JobSpec
from repro.core.orchestrator import ResourceOrchestrator
from repro.obs import Observability
from repro.schedulers.afs import AFSScheduler
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.fifo import (
    FIFOScheduler,
    OpportunisticScheduling,
    SJFScheduler,
)
from repro.schedulers.gandiva import GandivaScheduler
from repro.schedulers.lyra import LyraScheduler
from repro.schedulers.pollux import PolluxScheduler
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.traces.inference import InferenceTrace, generate_inference_trace
from repro.traces.workload import TraceConfig, Workload, generate_workload

SCENARIOS = ("basic", "advanced", "heterogeneous", "ideal")

#: Schemes and their wiring: (policy, loaning?, reclaimer, elastic?, tuned?)
SCHEMES: Dict[str, Dict] = {
    "baseline": dict(policy="fifo", loaning=False, elastic=False),
    "sjf": dict(policy="sjf", loaning=False, elastic=False),
    "lyra": dict(policy="lyra", loaning=True, reclaimer="lyra", elastic=True),
    # capacity-loaning-only group (elastic scaling disabled)
    "opportunistic": dict(policy="opportunistic", loaning=True,
                          reclaimer="random", elastic=False),
    "random_loaning": dict(policy="lyra", loaning=True, reclaimer="random",
                           elastic=False),
    "scf_loaning": dict(policy="lyra", loaning=True, reclaimer="scf",
                        elastic=False),
    "lyra_loaning": dict(policy="lyra", loaning=True, reclaimer="lyra",
                         elastic=False),
    # elastic-scaling-only group (no loaning)
    "gandiva": dict(policy="gandiva", loaning=False, elastic=True),
    "afs": dict(policy="afs", loaning=False, elastic=True),
    "pollux": dict(policy="pollux", loaning=False, elastic=True, tuned=True),
    "lyra_scaling": dict(policy="lyra", loaning=False, elastic=True),
    "lyra_tuned": dict(policy="lyra", loaning=False, elastic=True, tuned=True),
    # full system with tuning (used in §7.4 comparisons)
    "lyra_full_tuned": dict(policy="lyra", loaning=True, reclaimer="lyra",
                            elastic=True, tuned=True),
    # §10 future work: no running-time knowledge anywhere
    "lyra_agnostic": dict(policy="lyra_agnostic", loaning=True,
                          reclaimer="lyra", elastic=True),
    "lyra_agnostic_scaling": dict(policy="lyra_agnostic", loaning=False,
                                  elastic=True),
}


# ----------------------------------------------------------------------
# spec transforms
# ----------------------------------------------------------------------
def _make_elastic(spec: JobSpec) -> JobSpec:
    """Ideal-scenario rule: requested demand becomes the base demand and
    the scaling range is twice that (§7.1), preserving total workload."""
    if spec.elastic:
        return spec
    return replace(
        spec,
        elastic=True,
        min_workers=spec.max_workers,
        max_workers=2 * spec.max_workers,
        duration=spec.duration / 2.0,
    )


def with_heterogeneous_fraction(
    specs: Sequence[JobSpec], fraction: float, seed: int = 0
) -> List[JobSpec]:
    """Mark a random ``fraction`` of jobs heterogeneous-capable."""
    rng = np.random.default_rng(seed)
    chosen = set(
        rng.choice(
            len(specs), size=int(round(fraction * len(specs))), replace=False
        ).tolist()
    )
    return [
        replace(s, heterogeneous=(i in chosen)) for i, s in enumerate(specs)
    ]


def with_checkpointing_fraction(
    specs: Sequence[JobSpec], fraction: float, seed: int = 0
) -> List[JobSpec]:
    """Enable checkpointing on a random ``fraction`` of jobs (Fig. 13)."""
    rng = np.random.default_rng(seed)
    chosen = set(
        rng.choice(
            len(specs), size=int(round(fraction * len(specs))), replace=False
        ).tolist()
    )
    return [
        replace(s, checkpointing=(i in chosen)) for i, s in enumerate(specs)
    ]


def with_elastic_fraction(
    specs: Sequence[JobSpec], fraction: float, seed: int = 0
) -> List[JobSpec]:
    """Make ``fraction`` of all jobs elastic (Figs. 14-16 sweeps).

    Already-elastic jobs count toward the target; additional jobs are
    converted with the requested-demand-becomes-base rule.
    """
    rng = np.random.default_rng(seed)
    specs = list(specs)
    target = int(round(fraction * len(specs)))
    elastic_idx = [i for i, s in enumerate(specs) if s.elastic]
    extra_needed = max(0, target - len(elastic_idx))
    candidates = [i for i, s in enumerate(specs) if not s.elastic]
    chosen = set(
        rng.choice(
            candidates, size=min(extra_needed, len(candidates)), replace=False
        ).tolist()
    )
    return [
        _make_elastic(replace(s, fungible=True)) if i in chosen else s
        for i, s in enumerate(specs)
    ]


def apply_scenario(
    specs: Sequence[JobSpec], scenario: str, seed: int = 0
) -> List[JobSpec]:
    """Transform a Basic-scenario trace into the requested scenario."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; use one of {SCENARIOS}")
    specs = list(specs)
    if scenario == "basic":
        return specs
    if scenario == "advanced":
        # Basic + 10 % heterogeneous-capable jobs at <=70 % efficiency.
        return with_heterogeneous_fraction(specs, 0.10, seed)
    if scenario == "heterogeneous":
        # Fungible training load disabled; only the 10 % heterogeneous
        # jobs can touch on-loan servers (at non-ideal performance).
        specs = [replace(s, fungible=False) for s in specs]
        return with_heterogeneous_fraction(specs, 0.10, seed)
    # ideal: every job scales and runs heterogeneously at ideal speed.
    return [
        replace(_make_elastic(s), fungible=True, heterogeneous=True)
        for s in specs
    ]


# ----------------------------------------------------------------------
# experiment setup
# ----------------------------------------------------------------------
@dataclass
class ExperimentSetup:
    """A reusable bundle of workload, inference trace and cluster shape."""

    workload: Workload
    inference_trace: InferenceTrace
    training_servers: int
    inference_servers: int
    gpus_per_server: int = 8

    def make_pair(self) -> ClusterPair:
        return ClusterPair(
            make_training_cluster(self.training_servers, self.gpus_per_server),
            make_inference_cluster(self.inference_servers, self.gpus_per_server),
        )


def default_setup(
    num_jobs: int = 600,
    days: float = 3.0,
    training_servers: int = 40,
    inference_servers: int = 48,
    gpus_per_server: int = 8,
    seed: int = 0,
    target_load: float = 0.95,
    **trace_kwargs,
) -> ExperimentSetup:
    """A scaled-down analogue of the paper's production setup.

    The paper's clusters are 443 training and ~520 inference 8-GPU
    servers with 50,390 jobs over 15 days; the default here preserves the
    inference/training size ratio and the offered load while fitting in
    seconds of wall time.  Pass bigger numbers for full-scale runs.
    """
    config = TraceConfig(
        num_jobs=num_jobs,
        days=days,
        cluster_gpus=training_servers * gpus_per_server,
        seed=seed,
        target_load=target_load,
        **trace_kwargs,
    )
    workload = generate_workload(config)
    trace = generate_inference_trace(
        days=days + 2.0, num_servers=inference_servers, seed=seed
    )
    return ExperimentSetup(
        workload=workload,
        inference_trace=trace,
        training_servers=training_servers,
        inference_servers=inference_servers,
        gpus_per_server=gpus_per_server,
    )


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def make_policy(name: str, seed: int = 0, **kwargs) -> SchedulerPolicy:
    if name == "fifo":
        return FIFOScheduler()
    if name == "sjf":
        return SJFScheduler()
    if name == "opportunistic":
        return OpportunisticScheduling()
    if name == "lyra":
        return LyraScheduler()
    if name == "lyra_agnostic":
        from repro.schedulers.agnostic import LyraAgnosticScheduler

        return LyraAgnosticScheduler()
    if name == "gandiva":
        return GandivaScheduler()
    if name == "afs":
        return AFSScheduler()
    if name == "pollux":
        return PolluxScheduler(
            generations=kwargs.get("pollux_generations", 40),
            population=kwargs.get("pollux_population", 16),
            seed=seed,
        )
    raise ValueError(f"unknown policy {name!r}")


def build_sim(
    setup: ExperimentSetup,
    scheme: str,
    scenario: str = "basic",
    seed: int = 0,
    specs: Optional[Sequence[JobSpec]] = None,
    scaling_model: str = "linear",
    estimate_error: Optional[tuple] = None,
    predictor=None,
    sim_overrides: Optional[dict] = None,
    obs: Optional[Observability] = None,
    market=None,
    **policy_kwargs,
) -> Simulation:
    """Wire one (scheme, scenario) cell into a ready-to-run Simulation.

    Args:
        setup: Workload + clusters bundle.
        scheme: Key into :data:`SCHEMES`.
        scenario: One of :data:`SCENARIOS`.
        seed: Seed for stochastic pieces (Random reclaimer, Pollux GA,
            estimate-error injection).
        specs: Pre-transformed job specs; defaults to applying
            ``scenario`` to the setup's workload.
        scaling_model: ``"linear"`` or ``"sublinear20"`` (§7.2).
        estimate_error: ``(wrong_fraction, max_error)`` for the Table 9
            study — that fraction of jobs get a runtime estimate off by a
            uniform factor within ``±max_error``.
        predictor: Optional usage predictor for early reclaiming (§6).
        sim_overrides: Extra :class:`SimulationConfig` fields.
        obs: Observability bundle (tracer/registry/profiler); omit for
            the zero-overhead disabled default.
        market: Optional :class:`~repro.market.MarketConfig` — split the
            setup's hardware into a multi-cluster capacity market and
            clear it with a :class:`~repro.market.CapacityBroker`
            instead of the single-pair orchestrator.  A 1×1 market is
            behavior-identical to ``market=None``.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; use one of {sorted(SCHEMES)}")
    wiring = SCHEMES[scheme]
    if specs is None:
        specs = apply_scenario(setup.workload.specs, scenario, seed=seed)

    lender_traces = None
    if market is not None:
        # Lazy import: the market package is optional machinery and the
        # common single-pair path should not pay for it.
        from repro.market import build_market_setup

        built = build_market_setup(setup, market, seed=seed)
        pair = built.pair
        trace = built.aggregate_trace
        lender_traces = built.lender_traces
    else:
        pair = setup.make_pair()
        trace = setup.inference_trace  # always present: usage accounting
    policy = make_policy(wiring["policy"], seed=seed, **policy_kwargs)

    params = dict(
        elastic=wiring.get("elastic", False),
        tuned_jobs=wiring.get("tuned", False),
        scaling_model=scaling_model,
    )
    params.update(sim_overrides or {})
    config = SimulationConfig(**params)

    orchestrator = None
    if wiring.get("loaning", False):
        orch_kwargs = dict(
            reclaimer=wiring.get("reclaimer", "lyra"),
            headroom=wiring.get("headroom", 0.02),
            seed=seed,
            predictor=predictor,
            scale_in_first=config.elastic,
        )
        if market is not None:
            from repro.market import CapacityBroker

            orchestrator = CapacityBroker(
                lender_traces=lender_traces, **orch_kwargs
            )
        else:
            orchestrator = ResourceOrchestrator(**orch_kwargs)

    sim = Simulation(
        specs,
        pair,
        policy,
        inference_trace=trace,
        orchestrator=orchestrator,
        config=config,
        obs=obs,
    )
    if scenario == "ideal":
        sim.hetero_ideal = True

    if estimate_error is not None:
        wrong_fraction, max_error = estimate_error
        rng = np.random.default_rng(seed)
        for job in sim.jobs.values():
            if rng.random() < wrong_fraction:
                job.estimate_error = 1.0 + rng.uniform(-max_error, max_error)

    return sim


def run_scheme(
    setup: ExperimentSetup,
    scheme: str,
    scenario: str = "basic",
    **kwargs,
) -> SimulationMetrics:
    """Run one (scheme, scenario) cell and return its metrics.

    A thin wrapper over :func:`build_sim` — the what-if tooling builds
    the same simulation but stops it mid-run to price hypothetical
    plans; every benchmark and example goes through here.
    """
    return build_sim(setup, scheme, scenario, **kwargs).run()
