"""Crash-safe filesystem helpers.

Every artifact the toolchain writes — traces, reports, bench results,
snapshots, the WAL — must survive a process dying mid-write: a reader
must always see either the previous complete file or the new complete
file, never a truncated hybrid.  :func:`atomic_write` is the one shared
primitive: write to a temporary sibling, flush + fsync, then
``os.replace`` onto the destination (atomic on POSIX and Windows).
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import IO, Iterator, Union


@contextlib.contextmanager
def atomic_write(
    path: Union[str, Path],
    mode: str = "w",
    encoding: str = None,
    newline: str = None,
    sync: bool = True,
) -> Iterator[IO]:
    """Write ``path`` atomically: all-or-nothing, never partial.

    Yields a file object open on a temporary sibling
    (``<name>.tmp.<pid>`` in the destination directory, so the final
    rename never crosses filesystems).  On a clean exit the temporary
    is fsynced (unless ``sync=False``) and renamed over ``path``; on an
    exception it is removed and the destination is left untouched.

    ``mode`` accepts the text/binary write modes (``"w"``, ``"wb"``).
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write only supports write modes, got {mode!r}")
    dest = Path(path)
    tmp = dest.parent / f"{dest.name}.tmp.{os.getpid()}"
    if "b" in mode:
        fh = open(tmp, mode)
    else:
        fh = open(tmp, mode, encoding=encoding, newline=newline)
    try:
        yield fh
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, dest)
    except BaseException:
        fh.close()
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def atomic_write_text(path: Union[str, Path], text: str, **kwargs) -> None:
    """Convenience wrapper: atomically replace ``path`` with ``text``."""
    with atomic_write(path, **kwargs) as fh:
        fh.write(text)


def atomic_write_bytes(path: Union[str, Path], data: bytes, **kwargs) -> None:
    """Convenience wrapper: atomically replace ``path`` with ``data``."""
    with atomic_write(path, mode="wb", **kwargs) as fh:
        fh.write(data)
