"""The capacity broker: market clearing over N lenders × M borrowers.

One :class:`~repro.core.orchestrator.ResourceOrchestrator` watches one
inference trace and loans against one training cluster.  The broker
generalizes that single rule into a per-interval *clearing*:

1. every lender (inference member cluster) publishes its loanable
   supply, smoothed per lender with the same median-of-3 filter the
   pair path uses;
2. lenders whose outstanding loans exceed their supply are repaid first
   — per-lender recalls through the inherited reclaim machinery
   (route-around, scale-in-first, the configured reclaim planner),
   preferring mature contracts so recall penalties are paid only when
   unavoidable;
3. remaining training demand is matched to lenders with spare supply,
   cheapest transfer cost first, borrower regions most starved of free
   GPUs first — each match becomes a ``LoanServers`` action carrying
   its (lender, borrower) pair, which opens loan contracts at commit;
4. a demand-driven surplus (training no longer needs what it borrowed)
   is returned only after persisting three intervals, exactly like the
   pair path, largest debtor first.

Everything is emitted as declarative actions into the one
:class:`~repro.core.actions.EpochPlan` the transactional executor
commits — the market never moves a server outside a plan.

With at most one lender configured (or a degenerate 1×1
:class:`~repro.market.cluster_set.ClusterSet`), every method delegates
to the parent orchestrator, byte-for-byte.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.actions import LoanServers
from repro.core.orchestrator import ResourceOrchestrator


class CapacityBroker(ResourceOrchestrator):
    """Clears the multi-cluster capacity market each interval.

    Args:
        lender_traces: ``{lender_name: InferenceTrace}`` — one
            utilization series per inference member cluster (their
            diurnal phases differ across time zones, which is what makes
            the market interesting).  With zero or one entries the
            broker behaves exactly like the parent orchestrator.
        **kwargs: Forwarded to :class:`ResourceOrchestrator` (reclaimer,
            headroom, seed, predictor, scale_in_first, window).
    """

    def __init__(self, lender_traces: Optional[Dict[str, object]] = None,
                 **kwargs):
        super().__init__(**kwargs)
        self.lender_traces: Dict[str, object] = dict(lender_traces or {})
        self._lender_history: Dict[str, List[int]] = {
            name: [] for name in self.lender_traces
        }

    # ------------------------------------------------------------------
    def _plan_actions(self, sim: "Simulation") -> list:
        pair = sim.pair
        if len(self.lender_traces) <= 1 or not getattr(
            pair, "market_active", False
        ):
            # Degenerate market (or a plain pair): the single-lender rule
            # is the market's fixed point — delegate wholesale so the
            # golden logs stay byte-identical.
            return super()._plan_actions(sim)
        return self._clear_market(sim)

    def _clear_market(self, sim: "Simulation") -> list:
        pair = sim.pair
        pair.clock = sim.now  # contracts planned this tick carry `now`
        self._forecast_capped = False
        self._degraded_tick = (
            self.predictor_down is not None and self.predictor_down(sim.now)
        )
        headroom = self.headroom
        if self._degraded_tick:
            headroom = min(0.99, self.headroom + self.degraded_headroom)
            sim.metrics.registry.counter("resilience.degraded_ticks").inc()
            sim.trace(
                "recovery.predictor_degraded", headroom=headroom,
                freeze_loans=self.freeze_loans_when_degraded,
            )

        # 1. per-lender smoothed supply
        supplies: Dict[str, int] = {}
        for name in sorted(self.lender_traces):
            trace = self.lender_traces[name]
            history = self._lender_history[name]
            history.append(trace.loanable_at(sim.now, headroom=headroom))
            recent = history[-3:]
            supplies[name] = sorted(recent)[len(recent) // 2]

        outstanding = pair.outstanding_by_lender()
        actions: list = []

        # 2. lender-driven recalls: repay every over-lent member
        recalled: Dict[str, int] = {}
        for name in sorted(supplies):
            deficit = outstanding.get(name, 0) - supplies[name]
            if deficit <= 0:
                continue
            self._surplus_ticks = 0
            lender_actions = self._plan_reclaim_actions(
                sim, deficit, record_metrics=True, lender=name
            )
            recalled[name] = sum(
                len(a.server_ids) for a in lender_actions
                if a.kind == "reclaim_servers"
            )
            actions.extend(lender_actions)

        effective: Dict[str, int] = {
            name: max(0, outstanding.get(name, 0) - recalled.get(name, 0))
            for name in supplies
        }
        current = sum(effective.values())
        total_supply = sum(supplies.values())
        need = self.training_need_servers(sim, total_supply)
        target = min(total_supply, need)

        if sim.tracer.enabled:
            self._last_inputs = {
                "supply": total_supply,
                "need": need,
                "target": target,
                "current": current,
                "surplus_ticks": self._surplus_ticks,
                "degraded": self._degraded_tick,
                "forecast_capped": False,
                "predictor": self.predictor is not None,
                "lender_supply": dict(supplies),
                "lender_outstanding": dict(outstanding),
                "recalled": dict(recalled),
            }

        if target > current:
            self._surplus_ticks = 0
            if not (self._degraded_tick and self.freeze_loans_when_degraded):
                actions.extend(
                    self._match_loans(sim, target - current, supplies,
                                      effective)
                )
        elif target < current and not recalled:
            # Demand-driven surplus: return only after it persists (the
            # pair path's three-interval rule), largest debtor first.
            self._surplus_ticks += 1
            if self._surplus_ticks >= 3:
                self._surplus_ticks = 0
                remaining = current - target
                for name in sorted(
                    effective, key=lambda n: (-effective[n], n)
                ):
                    if remaining <= 0:
                        break
                    give_back = min(remaining, effective[name])
                    if give_back <= 0:
                        continue
                    lender_actions = self._plan_reclaim_actions(
                        sim, give_back, record_metrics=False, lender=name
                    )
                    returned = sum(
                        len(a.server_ids) for a in lender_actions
                        if a.kind == "reclaim_servers"
                    )
                    remaining -= returned
                    actions.extend(lender_actions)
        else:
            self._surplus_ticks = 0

        self._record_market_gauges(sim, pair)
        return actions

    # ------------------------------------------------------------------
    def _match_loans(
        self,
        sim: "Simulation",
        want: int,
        supplies: Dict[str, int],
        effective: Dict[str, int],
    ) -> list:
        """Match a loan deficit to lenders, cheapest transfer first.

        Borrower regions split the deficit most-starved-first (fewest
        free dedicated GPUs); each borrower then shops lenders ordered
        by ``(transfer_cost(lender, borrower), lender name)``.  Ids are
        pre-picked per lender via the shared eligibility predicate, so
        the commit is deterministic and matches what a count-based move
        would have taken.
        """
        pair = sim.pair
        spare: Dict[str, int] = {
            name: max(0, supplies[name] - effective.get(name, 0))
            for name in supplies
        }
        free_by_region = pair.training_region_free_gpus()
        borrowers = sorted(
            free_by_region, key=lambda r: (free_by_region[r], r)
        )
        shares = self._split_want(want, len(borrowers))
        actions: list = []
        claimed: set = set()  # ids already promised to an earlier action
        for borrower, share in zip(borrowers, shares):
            remaining = share
            lenders = sorted(
                spare,
                key=lambda n: (pair.transfer_cost(n, borrower), n),
            )
            for lender in lenders:
                if remaining <= 0:
                    break
                take = min(remaining, spare[lender])
                if take <= 0:
                    continue
                ids = sim.rm.peek_loanable(
                    take, lender=lender, exclude=claimed
                )
                if not ids:
                    continue
                claimed.update(ids)
                actions.append(LoanServers(
                    server_ids=tuple(ids),
                    requested=take,
                    lender=lender,
                    borrower=borrower,
                ))
                spare[lender] -= len(ids)
                remaining -= len(ids)
        return actions

    @staticmethod
    def _split_want(want: int, parts: int) -> List[int]:
        """Split a loan deficit across borrower regions, front-loaded:
        the most starved region (first) gets the ceiling share."""
        if parts <= 0:
            return []
        shares = []
        remaining = want
        for i in range(parts):
            share = math.ceil(remaining / (parts - i))
            shares.append(share)
            remaining -= share
        return shares

    # ------------------------------------------------------------------
    def _record_market_gauges(self, sim: "Simulation", pair) -> None:
        registry = sim.metrics.registry
        registry.gauge("market.contracts_open").set(len(pair.contracts))
        registry.gauge("market.penalties_accrued").set(
            pair.penalties_accrued
        )
        registry.gauge("market.early_recalls").set(pair.early_recalls)
