"""N inference + M training clusters behind the ClusterPair interface.

Lyra wires exactly one inference cluster to one training cluster; the
market generalizes both sides while keeping every existing consumer of
:class:`~repro.cluster.cluster.ClusterPair` working unchanged:

* the *training* side stays a single scheduler whitelist (one training
  scheduler owns all training hardware, §6) whose M regions are encoded
  in each server's ``home_cluster`` tag — placement uses the tags for
  locality, the scheduler itself is region-blind;
* the *inference* side becomes N real member whitelists (one autonomous
  inference scheduler each) presented to pair consumers as a read-only
  union (:class:`FederatedCluster`) — capacity sums, membership tests
  and lookups all work, but nothing can be *inserted* into the union:
  returns must route to the owning member via ``home_cluster``, which is
  exactly the invariant the pre-fix ``return_server`` violated.

With one cluster per side the set degenerates to the plain pair: the
single members are used directly, no federation wrapper, no behavior
change — only inert contract bookkeeping rides along.  The golden-log
equivalence suite pins this.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster, ClusterPair
from repro.cluster.server import Server
from repro.market.contracts import ContractTerms, LoanContract


class FederatedCluster(Cluster):
    """A read-only union view over several member whitelists.

    Everything a :class:`ClusterPair` consumer reads off the inference
    side — membership, lookups, capacity sums, the loanable scan — works
    across all members (in member order, insertion order within each).
    Mutations route to the owning member, except insertion:
    :meth:`add_server` raises, because "the union" is not a place a
    server can live — returns go to the member named by the server's
    ``home_cluster``.
    """

    def __init__(self, name: str, members: Sequence[Cluster]):
        if not members:
            raise ValueError("a federated cluster needs at least one member")
        self.name = name
        self.members: List[Cluster] = list(members)
        self._by_name: Dict[str, Cluster] = {}
        for member in self.members:
            if member.name in self._by_name:
                raise ValueError(f"duplicate member cluster {member.name!r}")
            self._by_name[member.name] = member
        self._view = None

    # -- membership ----------------------------------------------------
    def member(self, name: str) -> Cluster:
        return self._by_name[name]

    def owner_of(self, server_id: str) -> Cluster:
        for member in self.members:
            if server_id in member:
                return member
        raise KeyError(f"server {server_id!r} is in no member of {self.name!r}")

    def add_server(self, server: Server) -> None:
        raise TypeError(
            f"cannot add {server.server_id!r} to the federated "
            f"{self.name!r} whitelist: a union has no insertion point — "
            f"route the server to its home member "
            f"({server.home_cluster!r}) instead"
        )

    def remove_server(self, server_id: str) -> Server:
        return self.owner_of(server_id).remove_server(server_id)

    def attach_view(self, view) -> None:
        self._view = view
        for member in self.members:
            member.attach_view(view)

    def __contains__(self, server_id: str) -> bool:
        return any(server_id in member for member in self.members)

    def __len__(self) -> int:
        return sum(len(member) for member in self.members)

    def get(self, server_id: str) -> Server:
        return self.owner_of(server_id).get(server_id)

    # -- aggregate views ------------------------------------------------
    @property
    def servers(self) -> List[Server]:
        return [s for member in self.members for s in member.servers]

    @property
    def on_loan_servers(self) -> List[Server]:
        return [s for s in self.servers if s.on_loan]

    @property
    def dedicated_servers(self) -> List[Server]:
        return [s for s in self.servers if not s.on_loan]

    @property
    def total_gpus(self) -> int:
        return sum(member.total_gpus for member in self.members)

    @property
    def free_gpus(self) -> int:
        return sum(member.free_gpus for member in self.members)

    @property
    def used_gpus(self) -> int:
        return sum(member.used_gpus for member in self.members)

    @property
    def normalized_capacity(self) -> float:
        return sum(member.normalized_capacity for member in self.members)

    def release_job(self, job_id: int) -> int:
        return sum(member.release_job(job_id) for member in self.members)


class ClusterSet(ClusterPair):
    """A capacity market's cluster topology, shaped like a ClusterPair.

    Args:
        training_regions: M training clusters.  Their servers are merged
            into the single training scheduler whitelist; each keeps its
            region of origin in ``home_cluster`` (placement locality).
            With exactly one region, that cluster *is* the training
            whitelist, untouched.
        inference_clusters: N lender clusters.  With exactly one, it is
            used directly (degenerate pair); otherwise consumers see the
            :class:`FederatedCluster` union.
        transfer_costs: ``{(lender, borrower): cost}`` per-pair transfer
            costs the broker minimizes when matching loans; missing pairs
            cost ``default_transfer_cost``.
        terms: Default :class:`ContractTerms` for new loans.
    """

    def __init__(
        self,
        training_regions: Sequence[Cluster],
        inference_clusters: Sequence[Cluster],
        transfer_costs: Optional[Dict[Tuple[str, str], float]] = None,
        default_transfer_cost: float = 1.0,
        terms: Optional[ContractTerms] = None,
    ):
        training_regions = list(training_regions)
        inference_clusters = list(inference_clusters)
        if not training_regions or not inference_clusters:
            raise ValueError("the market needs >= 1 cluster on each side")
        self.training_region_names: Tuple[str, ...] = tuple(
            c.name for c in training_regions
        )
        if len(set(self.training_region_names)) != len(training_regions):
            raise ValueError("duplicate training region names")
        if len(training_regions) == 1:
            training = training_regions[0]
        else:
            training = Cluster(
                "training",
                [s for region in training_regions for s in region.servers],
            )
        self.inference_members: List[Cluster] = inference_clusters
        self._inference_by_name: Dict[str, Cluster] = {
            c.name: c for c in inference_clusters
        }
        if len(inference_clusters) == 1:
            inference: Cluster = inference_clusters[0]
        else:
            inference = FederatedCluster("inference", inference_clusters)
        super().__init__(training, inference)
        self.transfer_costs: Dict[Tuple[str, str], float] = dict(
            transfer_costs or {}
        )
        self.default_transfer_cost = default_transfer_cost
        self.terms = terms if terms is not None else ContractTerms()
        #: market time, advanced by the resource manager on every
        #: loan/return so contracts carry real timestamps
        self.clock: float = 0.0
        #: open loan contracts by server id
        self.contracts: Dict[str, LoanContract] = {}
        #: settled-contract accounting
        self.contracts_opened = 0
        self.recalls = 0
        self.early_recalls = 0
        self.penalties_accrued = 0.0
        self.transfer_cost_paid = 0.0
        self.lenders_used: set = set()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def market_active(self) -> bool:
        """More than one cluster on either side: market machinery live.

        In the degenerate 1×1 configuration everything market-specific
        (locality placement, broker clearing, contract-aware reclaim
        preferences) must stay inert so behavior is byte-identical to
        the plain pair.
        """
        return (
            len(self.inference_members) > 1
            or len(self.training_region_names) > 1
        )

    def clusters(self):
        yield self.training
        for member in self.inference_members:
            yield member

    def home_cluster_of(self, server: Server) -> Cluster:
        home = server.home_cluster
        if home == self.training.name or home in self.training_region_names:
            return self.training
        member = self._inference_by_name.get(home)
        if member is not None:
            return member
        if len(self.inference_members) == 1:
            # degenerate pair semantics: anything not training-homed is
            # the (single) inference cluster's
            return self.inference
        raise KeyError(
            f"server {server.server_id!r} is homed in {home!r}, which names "
            f"no member cluster of this market"
        )

    def region_of(self, server: Server) -> Optional[str]:
        """The region a server's capacity currently serves.

        Dedicated training servers serve their home region; an on-loan
        server serves the borrower region of its contract.  Placement
        uses this for same-region elastic growth.
        """
        if server.on_loan:
            contract = self.contracts.get(server.server_id)
            return contract.borrower if contract is not None else None
        return server.home_cluster

    def transfer_cost(self, lender: str, borrower: str) -> float:
        return self.transfer_costs.get(
            (lender, borrower), self.default_transfer_cost
        )

    def training_region_free_gpus(self) -> Dict[str, int]:
        """Free dedicated GPUs per training region (borrower pressure)."""
        free: Dict[str, int] = {
            name: 0 for name in self.training_region_names
        }
        for server in self.training.servers:
            if server.on_loan:
                continue
            if server.home_cluster in free:
                free[server.home_cluster] += server.free_gpus
        return free

    def outstanding_by_lender(self) -> Dict[str, int]:
        """Open loans per lender (every lender listed, zeros included)."""
        counts: Dict[str, int] = {
            member.name: 0 for member in self.inference_members
        }
        for contract in self.contracts.values():
            counts[contract.lender] = counts.get(contract.lender, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # loan/return with contracts
    # ------------------------------------------------------------------
    @property
    def default_borrower(self) -> str:
        return self.training_region_names[0]

    def _open_contracts(
        self, moved: Iterable[Server], borrower: Optional[str]
    ) -> None:
        to = borrower if borrower is not None else self.default_borrower
        for server in moved:
            lender = server.home_cluster
            self.contracts[server.server_id] = LoanContract(
                server_id=server.server_id,
                lender=lender,
                borrower=to,
                start=self.clock,
                min_duration=self.terms.min_duration,
                recall_penalty=self.terms.recall_penalty,
            )
            self.contracts_opened += 1
            self.lenders_used.add(lender)
            self.transfer_cost_paid += self.transfer_cost(lender, to)

    def loan(self, count, eligible=None, borrower=None):
        moved = super().loan(count, eligible)
        self._open_contracts(moved, borrower)
        return moved

    def loan_ids(self, server_ids, borrower=None):
        moved = super().loan_ids(server_ids)
        self._open_contracts(moved, borrower)
        return moved

    def return_server(self, server_id: str) -> Server:
        server = super().return_server(server_id)
        contract = self.contracts.pop(server_id, None)
        if contract is not None:
            self.recalls += 1
            penalty = contract.penalty_at(self.clock)
            if penalty:
                self.early_recalls += 1
                self.penalties_accrued += penalty
        return server

    # ------------------------------------------------------------------
    def market_snapshot(self) -> Dict[str, object]:
        """Cumulative market accounting, for CLI/benchmark reporting."""
        return {
            "inference_clusters": [m.name for m in self.inference_members],
            "training_regions": list(self.training_region_names),
            "contracts_open": len(self.contracts),
            "contracts_opened": self.contracts_opened,
            "recalls": self.recalls,
            "early_recalls": self.early_recalls,
            "penalties_accrued": round(self.penalties_accrued, 4),
            "transfer_cost_paid": round(self.transfer_cost_paid, 4),
            "lenders_used": sorted(self.lenders_used),
            "outstanding_by_lender": self.outstanding_by_lender(),
        }
