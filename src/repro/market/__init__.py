"""Multi-cluster capacity market (the Aryl direction, ROADMAP item 3).

N inference clusters in different time zones lend whitelist capacity to
M training regions through a broker that clears the market every
scheduling interval.  The degenerate 1×1 market reproduces the plain
:class:`~repro.cluster.cluster.ClusterPair` behavior byte-for-byte —
pinned by the golden-log equivalence suite.
"""

from repro.market.broker import CapacityBroker
from repro.market.cluster_set import ClusterSet, FederatedCluster
from repro.market.contracts import HOUR, ContractTerms, LoanContract
from repro.market.scenario import (
    MarketBuild,
    MarketConfig,
    RegionSpec,
    build_market_setup,
    market_config_from_file,
    market_config_from_spec,
    resolve_market,
)

__all__ = [
    "CapacityBroker",
    "ClusterSet",
    "FederatedCluster",
    "ContractTerms",
    "LoanContract",
    "HOUR",
    "MarketBuild",
    "MarketConfig",
    "RegionSpec",
    "build_market_setup",
    "market_config_from_file",
    "market_config_from_spec",
    "resolve_market",
]
