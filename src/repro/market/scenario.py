"""Market topologies: specs, config files and the setup builder.

A market run is an ordinary :class:`~repro.scenarios.ExperimentSetup`
whose hardware is split across regions.  The split is described by a
:class:`MarketConfig`, obtained either from a compact ``"NxM"`` spec
(N inference lenders staggered across time zones, M training regions) or
from a JSON file for full control over names, sizes, transfer costs and
contract terms::

    {
      "inference": [{"name": "infer-eu", "servers": 24, "peak_hour": 20},
                    {"name": "infer-us", "servers": 24, "peak_hour": 4}],
      "training":  [{"name": "train-eu", "servers": 20},
                    {"name": "train-us", "servers": 20}],
      "transfer_costs": {"infer-eu->train-us": 2.0},
      "default_transfer_cost": 1.0,
      "min_duration": 7200.0,
      "recall_penalty": 1.0
    }

``servers`` may be omitted (or 0) to split the setup's cluster sizes
evenly across the regions, so the same workload runs on the same total
hardware whether it is one pair or a 3×2 market.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.cluster import (
    Cluster,
    make_inference_cluster,
    make_training_cluster,
)
from repro.market.cluster_set import ClusterSet
from repro.market.contracts import ContractTerms
from repro.traces.inference import (
    DAY,
    SAMPLE_INTERVAL,
    InferenceTrace,
    generate_inference_trace,
)

_SPEC_RE = re.compile(r"^(\d+)x(\d+)$")

#: hours between consecutive auto-generated lenders' diurnal peaks —
#: roughly one continent apart, so their loanable troughs interleave
_TIMEZONE_STRIDE_HOURS = 8.0


@dataclass(frozen=True)
class RegionSpec:
    """One region's slice of a market side.

    ``servers=0`` means "an even share of the setup's total"; the
    remainder of an uneven split goes to the earlier regions.
    """

    name: str
    servers: int = 0
    peak_hour: float = 22.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        if self.servers < 0:
            raise ValueError(
                f"servers must be >= 0, got {self.servers} for {self.name!r}"
            )


@dataclass(frozen=True)
class MarketConfig:
    """The declarative shape of a capacity market."""

    inference: Tuple[RegionSpec, ...]
    training: Tuple[RegionSpec, ...]
    transfer_costs: Tuple[Tuple[str, str, float], ...] = ()
    default_transfer_cost: float = 1.0
    terms: ContractTerms = field(default_factory=ContractTerms)

    def __post_init__(self) -> None:
        if not self.inference or not self.training:
            raise ValueError("a market needs >= 1 region on each side")

    @property
    def shape(self) -> str:
        return f"{len(self.inference)}x{len(self.training)}"

    def transfer_cost_map(self) -> Dict[Tuple[str, str], float]:
        return {
            (lender, borrower): cost
            for lender, borrower, cost in self.transfer_costs
        }


def market_config_from_spec(spec: str) -> MarketConfig:
    """``"NxM"`` -> N lenders in staggered time zones, M training regions.

    Lender ``infer-r{i}`` peaks at ``(22 - 8*i) mod 24`` local hours so
    supply troughs interleave — when one region's inference traffic
    peaks (and it recalls its loans), another is in its trough (and has
    spare capacity), which is the condition under which a market beats N
    independent pairs.
    """
    match = _SPEC_RE.match(spec.strip())
    if not match:
        raise ValueError(
            f"bad market spec {spec!r}: expected 'NxM' "
            f"(N inference clusters x M training regions), e.g. '2x2'"
        )
    n, m = int(match.group(1)), int(match.group(2))
    if n < 1 or m < 1:
        raise ValueError(f"bad market spec {spec!r}: both sides need >= 1")
    inference = tuple(
        RegionSpec(
            name=f"infer-r{i}",
            peak_hour=(22.0 - _TIMEZONE_STRIDE_HOURS * i) % 24.0,
        )
        for i in range(n)
    )
    training = tuple(RegionSpec(name=f"train-r{j}") for j in range(m))
    return MarketConfig(inference=inference, training=training)


def market_config_from_file(path: str) -> MarketConfig:
    """Load a :class:`MarketConfig` from a JSON file (schema above)."""
    with open(path) as fh:
        raw = json.load(fh)
    def regions(key: str) -> Tuple[RegionSpec, ...]:
        entries = raw.get(key) or []
        return tuple(
            RegionSpec(
                name=e["name"],
                servers=int(e.get("servers", 0) or 0),
                peak_hour=float(e.get("peak_hour", 22.0)),
            )
            for e in entries
        )
    costs: List[Tuple[str, str, float]] = []
    for key, cost in (raw.get("transfer_costs") or {}).items():
        lender, sep, borrower = key.partition("->")
        if not sep or not lender or not borrower:
            raise ValueError(
                f"bad transfer_costs key {key!r}: expected 'lender->borrower'"
            )
        costs.append((lender, borrower, float(cost)))
    return MarketConfig(
        inference=regions("inference"),
        training=regions("training"),
        transfer_costs=tuple(costs),
        default_transfer_cost=float(raw.get("default_transfer_cost", 1.0)),
        terms=ContractTerms(
            min_duration=float(
                raw.get("min_duration", ContractTerms().min_duration)
            ),
            recall_penalty=float(
                raw.get("recall_penalty", ContractTerms().recall_penalty)
            ),
        ),
    )


def resolve_market(spec: Optional[str]) -> Optional[MarketConfig]:
    """CLI front door: ``None``, an ``"NxM"`` spec, or a JSON path."""
    if spec is None:
        return None
    if _SPEC_RE.match(spec.strip()):
        return market_config_from_spec(spec)
    if spec.endswith(".json"):
        return market_config_from_file(spec)
    raise ValueError(
        f"bad --clusters value {spec!r}: expected 'NxM' or a .json config path"
    )


# ----------------------------------------------------------------------
# building the topology
# ----------------------------------------------------------------------
@dataclass
class MarketBuild:
    """Everything :func:`~repro.scenarios.build_sim` needs to swap a
    market in for the plain pair."""

    pair: ClusterSet
    lender_traces: Dict[str, InferenceTrace]
    aggregate_trace: InferenceTrace


def _split(total: int, specs: Tuple[RegionSpec, ...]) -> List[int]:
    """Resolve per-region server counts; even split for ``servers=0``."""
    explicit = [s.servers for s in specs]
    if any(explicit):
        if not all(explicit):
            raise ValueError(
                "either give every region an explicit server count or none"
            )
        return explicit
    n = len(specs)
    base, remainder = divmod(total, n)
    counts = [base + (1 if i < remainder else 0) for i in range(n)]
    if any(c <= 0 for c in counts):
        raise ValueError(
            f"cannot split {total} servers across {n} regions: "
            f"every region needs at least one server"
        )
    return counts


def build_market_setup(
    setup: "ExperimentSetup", config: MarketConfig, seed: int = 0
) -> MarketBuild:
    """Split an experiment setup's hardware into the configured market.

    The total server counts (and the GPU shape) come from ``setup``, so
    a market run is load-comparable with the pair run it generalizes.
    Each lender gets its own diurnal trace, phase-shifted per its
    ``peak_hour``; the per-sample mean of those series (weighted by
    lender size) becomes the aggregate trace the simulator samples for
    overall-usage accounting.
    """
    days = (
        len(setup.inference_trace.utilization) * SAMPLE_INTERVAL / DAY
    )
    inference_counts = _split(setup.inference_servers, config.inference)
    training_counts = _split(setup.training_servers, config.training)

    inference_clusters: List[Cluster] = []
    lender_traces: Dict[str, InferenceTrace] = {}
    for i, (spec, count) in enumerate(zip(config.inference, inference_counts)):
        inference_clusters.append(
            make_inference_cluster(
                count,
                setup.gpus_per_server,
                name=spec.name,
                id_prefix=spec.name,
            )
        )
        lender_traces[spec.name] = generate_inference_trace(
            days=days,
            num_servers=count,
            seed=seed + i,
            peak_hour=spec.peak_hour,
        )

    training_clusters = [
        make_training_cluster(
            count,
            setup.gpus_per_server,
            name=spec.name,
            id_prefix=spec.name,
        )
        for spec, count in zip(config.training, training_counts)
    ]

    total = sum(inference_counts)
    weighted = np.zeros_like(next(iter(lender_traces.values())).utilization)
    for name in lender_traces:
        trace = lender_traces[name]
        weighted = weighted + trace.utilization * (trace.num_servers / total)
    aggregate = InferenceTrace(utilization=weighted, num_servers=total)

    pair = ClusterSet(
        training_regions=training_clusters,
        inference_clusters=inference_clusters,
        transfer_costs=config.transfer_cost_map(),
        default_transfer_cost=config.default_transfer_cost,
        terms=config.terms,
    )
    return MarketBuild(
        pair=pair, lender_traces=lender_traces, aggregate_trace=aggregate
    )
