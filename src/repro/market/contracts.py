"""Loan contracts for the multi-cluster capacity market.

In the single-pair world a loan is an unadorned whitelist move; in a
market of many lenders (the Aryl direction, ROADMAP item 3) each loan is
a *contract* between a lender (an inference member cluster) and a
borrower (a training region): it opens at a timestamp, carries a minimum
duration, and recalling it early costs the borrower a penalty.  The
:class:`~repro.market.cluster_set.ClusterSet` opens one contract per
loaned server and settles it when the server returns home.
"""

from __future__ import annotations

from dataclasses import dataclass

HOUR = 3600.0


@dataclass(frozen=True)
class ContractTerms:
    """Market-wide default terms for new loan contracts.

    Attributes:
        min_duration: Seconds a loan should run before a recall is
            penalty-free; whitelist churn is not free in production
            (draining, re-imaging, scheduler resync), so the market
            discourages flash loans.
        recall_penalty: Cost units accrued when a server is recalled
            before ``min_duration`` elapsed.
    """

    min_duration: float = 2 * HOUR
    recall_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.min_duration < 0:
            raise ValueError(
                f"min_duration must be >= 0, got {self.min_duration}"
            )
        if self.recall_penalty < 0:
            raise ValueError(
                f"recall_penalty must be >= 0, got {self.recall_penalty}"
            )


@dataclass(frozen=True)
class LoanContract:
    """One open loan: a server moved from ``lender`` to ``borrower``."""

    server_id: str
    lender: str
    borrower: str
    start: float
    min_duration: float = 2 * HOUR
    recall_penalty: float = 1.0

    def mature(self, now: float) -> bool:
        """Whether recalling at ``now`` is penalty-free."""
        return now - self.start >= self.min_duration

    def penalty_at(self, now: float) -> float:
        """The recall penalty due if the loan ends at ``now``."""
        return 0.0 if self.mature(now) else self.recall_penalty
