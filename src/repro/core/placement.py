"""Worker placement via best-fit-decreasing bin packing (§5.3).

Given per-job worker counts from the allocator, placement decides which
server hosts each worker.  Goals and rules:

* **Fragmentation**: jobs are packed best-fit in decreasing order of
  per-worker GPU demand (GPUs are the bottleneck resource).
* **Domain preference**: inelastic jobs prefer dedicated training servers;
  elastic jobs prefer on-loan inference servers, so that reclaiming can be
  satisfied by scaling elastic jobs in rather than preempting.
* **Server groups**: an elastic job's base and flexible workers land on
  *separate* groups of on-loan servers (BASE_GROUP / FLEX_GROUP); during
  reclaiming Lyra vacates the flexible group first without preemption.
* **Type homogeneity**: a non-heterogeneous job must keep all its workers
  on one GPU type within a run (fungible jobs may pick either type per
  run); heterogeneous jobs may straddle types, paying a throughput
  penalty, with base demand preferring training and flexible demand
  preferring inference hardware (§6).

The Table 6 ablation — BFD without the elastic-aware preferences — is the
``special_elastic_grouping=False`` configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.server import BASE_GROUP, FLEX_GROUP, Server

from repro.rm.manager import TransientLaunchError

try:  # typing-only; avoids a hard dependency cycle
    from repro.rm.manager import ResourceManager
except ImportError:  # pragma: no cover
    ResourceManager = None  # type: ignore[assignment]


@dataclass
class PlacementRequest:
    """Workers to place for one job this epoch.

    ``base_workers`` of zero means the job is already running and only
    scale-out flexible workers need placing.
    """

    job: Job
    base_workers: int = 0
    flex_workers: int = 0

    def __post_init__(self) -> None:
        if self.base_workers < 0 or self.flex_workers < 0:
            raise ValueError(f"negative worker counts in {self}")


@dataclass
class PlacementResult:
    """What placement achieved.

    Attributes:
        placed_base: Jobs whose base demand was fully placed.
        failed_base: Jobs whose base demand could not be placed; their
            partial placements were rolled back and they stay queued.
        flex_shortfall: Flexible workers per job that found no server
            (tolerated — flexible demand is best-effort).
    """

    placed_base: List[Job] = field(default_factory=list)
    failed_base: List[Job] = field(default_factory=list)
    flex_shortfall: Dict[int, int] = field(default_factory=dict)


class PlacementEngine:
    """Best-fit-decreasing placement over a training cluster."""

    def __init__(
        self,
        cluster: Cluster,
        special_elastic_grouping: bool = True,
        opportunistic: bool = False,
        rm: Optional["ResourceManager"] = None,
        now: float = 0.0,
        view=None,
        region_of=None,
    ):
        self.cluster = cluster
        self.special_elastic_grouping = special_elastic_grouping
        #: row-6 Opportunistic Scheduling (§7.1): fungible jobs are queued
        #: to the inference cluster only, never to training servers.
        self.opportunistic = opportunistic
        #: optional resource manager: when present, workers become
        #: tracked containers and unhealthy nodes are avoided
        self.rm = rm
        self.now = now
        #: optional ClusterView: candidate sets come from its
        #: free-capacity index instead of full cluster scans
        self.view = view
        #: optional locality oracle (multi-cluster markets): maps a
        #: server to the region its capacity currently serves; a job then
        #: prefers to grow in the region hosting most of its workers,
        #: within each domain-preference tier
        self.region_of = region_of

    # ------------------------------------------------------------------
    # candidate ordering
    # ------------------------------------------------------------------
    def _gpu_type_lock(self, job: Job) -> Optional[str]:
        """GPU type this job is pinned to by its existing workers."""
        if job.spec.heterogeneous:
            return None
        for server_id in job.servers:
            if server_id in self.cluster:
                return self.cluster.get(server_id).gpu_type.name
        return None

    def _eligible(self, job: Job, server: Server, flexible: bool) -> bool:
        return self._domain_eligible(job, server.on_loan)

    def _domain_eligible(self, job: Job, on_loan: bool) -> bool:
        """Eligibility is a *domain* property: it depends only on whether
        the server is on loan, never on the individual machine — which is
        what lets the view prune whole buckets at once."""
        if self.opportunistic and job.spec.fungible:
            return on_loan
        if not on_loan:
            return True
        # On-loan (inference-type) servers take only fungible or
        # heterogeneous jobs.
        return job.spec.fungible or job.spec.heterogeneous

    def _preference(self, job: Job, server: Server, flexible: bool) -> int:
        """Rank tiers: lower is more preferred."""
        if not self.special_elastic_grouping:
            # Ablation: naive BFD — treat every server alike, training
            # hardware first for determinism.
            return 0 if not server.on_loan else 1
        if job.spec.heterogeneous:
            # Base on training, flexible on inference whenever possible.
            if flexible:
                return 0 if server.on_loan else 1
            return 0 if not server.on_loan else 1
        if job.elastic:
            if server.on_loan:
                wanted = FLEX_GROUP if flexible else BASE_GROUP
                if server.group == wanted:
                    return 0
                if server.group is None:
                    return 1
                return 3  # wrong group: last resort among on-loan
            return 2  # training servers after on-loan options
        # Inelastic: dedicated training first.
        return 0 if not server.on_loan else 1

    @staticmethod
    def worker_cost(job: Job, server: Server) -> int:
        """Physical GPUs one worker of ``job`` occupies on ``server``.

        Implements the §5.2 capacity normalization: on weaker GPUs the
        worker count is raised (smaller local batches at constant global
        batch, §2.1), so a nominal demand of ``g`` training GPUs costs
        ``ceil(g / relative_compute)`` physical GPUs here while running
        at undiminished speed.
        """
        return math.ceil(
            job.spec.gpus_per_worker / server.gpu_type.relative_compute
        )

    def _job_region(self, job: Job) -> Optional[str]:
        """The region hosting the plurality of this job's workers.

        Ties break to the lexicographically smaller region name so the
        answer — and therefore placement — is deterministic.  ``None``
        (no placed workers, or no region information) disables the
        locality rank for this job: any region is as good as any other
        for its first worker.
        """
        counts: Dict[str, int] = {}
        for placement in (job.base_placement, job.flex_placement):
            for server_id, workers in placement.items():
                if server_id not in self.cluster:
                    continue
                region = self.region_of(self.cluster.get(server_id))
                if region is None:
                    continue
                counts[region] = counts.get(region, 0) + workers
        if not counts:
            return None
        return min(counts, key=lambda r: (-counts[r], r))

    def _candidates(self, job: Job, flexible: bool) -> List[Server]:
        lock = self._gpu_type_lock(job)
        if self.view is not None:
            # Free-capacity index: only servers of eligible domains with
            # enough free GPUs are even visited.  The sort key below is a
            # total order (it ends in server_id), so sorting the same
            # candidate *set* yields the exact list the full scan would.
            servers = self.view.candidates(
                cost_for_type=lambda tname: math.ceil(
                    job.spec.gpus_per_worker / self.view.rel_compute(tname)
                ),
                domain_ok=lambda on_loan: self._domain_eligible(job, on_loan),
                type_lock=lock,
            )
            if self.rm is not None:
                servers = [
                    s for s in servers if self.rm.is_healthy(s.server_id)
                ]
        else:
            servers = []
            for server in self.cluster.servers:
                if server.free_gpus < self.worker_cost(job, server):
                    continue
                if self.rm is not None and not self.rm.is_healthy(
                    server.server_id
                ):
                    continue
                if not self._eligible(job, server, flexible):
                    continue
                if lock is not None and server.gpu_type.name != lock:
                    continue
                servers.append(server)
        # Best fit: fewest free GPUs first within a preference tier, and
        # prefer partially-used servers over empty ones to curb
        # fragmentation.  Within a tier, full-speed servers beat known
        # stragglers (perf_factor is 1.0 everywhere absent faults, so
        # the extra key component is inert then).  With a locality
        # oracle, same-region servers win among equally-packed
        # candidates — elastic growth stays near the job's workers.
        # Locality must stay a tie-break *below* free_gpus: ranking it
        # above best-fit lets region affinity override packing, which
        # fragments a scarce on-loan pool until some opportunistic
        # job's base demand can never fit again.
        if self.region_of is not None:
            job_region = self._job_region(job)
            region_of = self.region_of
            servers.sort(
                key=lambda s: (
                    self._preference(job, s, flexible),
                    -s.perf_factor,
                    s.idle,
                    s.free_gpus,
                    0 if (
                        job_region is None
                        or region_of(s) == job_region
                    ) else 1,
                    s.server_id,
                )
            )
            return servers
        servers.sort(
            key=lambda s: (
                self._preference(job, s, flexible),
                -s.perf_factor,
                s.idle,
                s.free_gpus,
                s.server_id,
            )
        )
        return servers

    # ------------------------------------------------------------------
    # placement of one worker batch
    # ------------------------------------------------------------------
    def _place_workers(self, job: Job, workers: int, flexible: bool) -> int:
        """Place up to ``workers`` workers; returns how many were placed."""
        # The array twin ranks by the base key only; with a locality
        # oracle active the list walk is authoritative for all backends.
        if (
            getattr(self.view, "backend", None) == "array"
            and self.region_of is None
        ):
            return self._place_workers_array(job, workers, flexible)
        remaining = workers
        while remaining > 0:
            placed_this_round = 0
            for server in self._candidates(job, flexible):
                cost = self.worker_cost(job, server)
                fit = min(remaining, server.free_gpus // cost)
                if fit <= 0:
                    continue
                if self.rm is not None:
                    try:
                        self.rm.launch(
                            job, server, fit, cost, flexible=flexible,
                            now=self.now,
                        )
                    except TransientLaunchError:
                        # launch retries exhausted on this server; books
                        # are untouched — move on to the next candidate
                        continue
                else:
                    server.allocate(job.job_id, fit * cost)
                    job.record_placement(
                        server.server_id,
                        fit,
                        flexible=flexible,
                        gpu_cost=cost,
                        on_loan=server.on_loan,
                    )
                if (
                    self.special_elastic_grouping
                    and server.on_loan
                    and server.group is None
                    and job.elastic
                    and not job.spec.heterogeneous
                ):
                    journal = getattr(self.rm, "journal", None)
                    if journal is not None:
                        # group assignment is outside the RM's books; give
                        # the plan journal its pre-image for rollback
                        journal.record_group(server)
                    server.group = FLEX_GROUP if flexible else BASE_GROUP
                    if self.view is not None:
                        self.view.note_group_change(server)
                remaining -= fit
                placed_this_round += fit
                break  # re-rank candidates after each placement
            if placed_this_round == 0:
                break
        return workers - remaining

    def _place_workers_array(
        self, job: Job, workers: int, flexible: bool
    ) -> int:
        """The array-backend twin of :meth:`_place_workers`.

        The legacy loop sorts the full candidate list but only ever uses
        its head: it places on the first server that works, then
        re-ranks.  The ranking key is a total order, so asking the array
        view for the single best candidate (excluding servers whose
        launch just failed transiently, exactly as the list walk skips
        them within one round) visits the same servers in the same
        order — without building or sorting a list per round.
        """
        view = self.view
        train_ok = self._domain_eligible(job, False)
        loan_ok = self._domain_eligible(job, True)
        unhealthy = None
        if self.rm is not None:
            unhealthy = self.rm.unhealthy_ids()
        remaining = workers
        while remaining > 0:
            placed_this_round = 0
            failed_ids: Optional[set] = None
            # recomputed per round: the first placed worker type-locks a
            # non-heterogeneous job for the rest of its placement
            lock = self._gpu_type_lock(job)
            while True:
                server = view.select_best(
                    job.spec.gpus_per_worker,
                    train_ok,
                    loan_ok,
                    lock,
                    flexible,
                    job.spec.heterogeneous,
                    job.elastic,
                    self.special_elastic_grouping,
                    unhealthy_ids=unhealthy,
                    exclude_ids=failed_ids,
                )
                if server is None:
                    break
                cost = self.worker_cost(job, server)
                fit = min(remaining, server.free_gpus // cost)
                if self.rm is not None:
                    try:
                        self.rm.launch(
                            job, server, fit, cost, flexible=flexible,
                            now=self.now,
                        )
                    except TransientLaunchError:
                        # retries exhausted here; books untouched — the
                        # next-best candidate is the next list entry
                        if failed_ids is None:
                            failed_ids = set()
                        failed_ids.add(server.server_id)
                        continue
                else:
                    server.allocate(job.job_id, fit * cost)
                    job.record_placement(
                        server.server_id,
                        fit,
                        flexible=flexible,
                        gpu_cost=cost,
                        on_loan=server.on_loan,
                    )
                if (
                    self.special_elastic_grouping
                    and server.on_loan
                    and server.group is None
                    and job.elastic
                    and not job.spec.heterogeneous
                ):
                    journal = getattr(self.rm, "journal", None)
                    if journal is not None:
                        journal.record_group(server)
                    server.group = FLEX_GROUP if flexible else BASE_GROUP
                    view.note_group_change(server)
                remaining -= fit
                placed_this_round += fit
                break  # re-rank (ask for a fresh best) after a placement
            if placed_this_round == 0:
                break
        return workers - remaining

    def _needs_mixed(self, request: PlacementRequest) -> bool:
        """Whether this job's workers can only fit by spanning GPU types."""
        job = request.job
        if not job.spec.heterogeneous:
            return False
        workers = request.base_workers + request.flex_workers
        for on_loan in (False, True):
            if self.view is not None:
                capacity = self.view.domain_capacity(
                    on_loan,
                    cost_for_type=lambda tname: math.ceil(
                        job.spec.gpus_per_worker
                        / self.view.rel_compute(tname)
                    ),
                )
            else:
                capacity = 0
                for server in self.cluster.servers:
                    if server.on_loan != on_loan:
                        continue
                    capacity += (
                        server.free_gpus // self.worker_cost(job, server)
                    )
            if capacity >= workers:
                return False
        return True

    def _rollback(self, job: Job) -> None:
        """Undo all placements for a job that failed its base demand."""
        if self.rm is not None:
            self.rm.release_job(job, now=self.now)
            return
        for server_id in list(job.servers):
            self.cluster.get(server_id).release(job.job_id)
        job.clear_placement()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def place(self, requests: Sequence[PlacementRequest]) -> PlacementResult:
        """Place all requests, largest per-worker demand first (BFD)."""
        result = PlacementResult()
        ordered = sorted(
            requests,
            key=lambda r: (-r.job.spec.gpus_per_worker, r.job.job_id),
        )
        # Jobs that will actually straddle GPU types (their demand fits
        # neither domain alone) go last, with the lowest priority on the
        # remaining servers (§6).  Heterogeneous-*capable* jobs that fit
        # a single domain are placed like everyone else.
        ordered.sort(key=lambda r: self._needs_mixed(r))
        for request in ordered:
            job = request.job
            if request.base_workers > 0:
                placed = self._place_workers(
                    job, request.base_workers, flexible=False
                )
                if placed < request.base_workers:
                    self._rollback(job)
                    result.failed_base.append(job)
                    continue
                result.placed_base.append(job)
            if request.flex_workers > 0:
                placed = self._place_workers(
                    job, request.flex_workers, flexible=True
                )
                if placed < request.flex_workers:
                    result.flex_shortfall[job.job_id] = (
                        request.flex_workers - placed
                    )
        return result
