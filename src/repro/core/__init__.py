"""Lyra's core: reclaiming, two-phase allocation, placement, orchestration."""

from repro.core.allocation import (
    AllocationDecision,
    Pools,
    allocate_two_phase,
    build_flex_groups,
    preferred_domain,
    sjf_phase,
)
from repro.core.mckp import Item, solve_mckp, solve_mckp_bruteforce
from repro.core.orchestrator import ResourceOrchestrator
from repro.core.placement import PlacementEngine, PlacementRequest, PlacementResult
from repro.core.reclaim import (
    CostModel,
    ReclaimPlan,
    plan_reclaim_lyra,
    plan_reclaim_optimal,
    plan_reclaim_random,
    plan_reclaim_scf,
    server_preemption_cost,
)

__all__ = [
    "AllocationDecision",
    "CostModel",
    "Item",
    "PlacementEngine",
    "PlacementRequest",
    "PlacementResult",
    "Pools",
    "ReclaimPlan",
    "ResourceOrchestrator",
    "allocate_two_phase",
    "build_flex_groups",
    "plan_reclaim_lyra",
    "plan_reclaim_optimal",
    "plan_reclaim_random",
    "plan_reclaim_scf",
    "preferred_domain",
    "server_preemption_cost",
    "sjf_phase",
    "solve_mckp",
    "solve_mckp_bruteforce",
]
