"""Resource orchestrator: executes capacity loaning and reclaiming (§3–§4).

The inference cluster scheduler autonomously decides *when and how much* to
lend or ask back — here that signal is derived from the inference
utilization trace plus the 2 % headroom rule (§7.1).  The orchestrator's
own responsibility is *which* on-loan servers to return, delegated to one
of the reclaim planners in :mod:`repro.core.reclaim` (Lyra's preemption-
cost greedy, or the Random/SCF baselines).

An optional usage predictor lets the orchestrator initiate reclaiming one
interval early, before the inference traffic actually rises (§6).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from repro.core.actions import (
    EpochPlan,
    LoanServers,
    PlanExecutor,
    Preempt,
    ReclaimServers,
    ScaleIn,
)
from repro.core.reclaim import (
    ReclaimPlan,
    plan_reclaim_lyra,
    plan_reclaim_random,
    plan_reclaim_scf,
    server_preemption_cost,
)
from repro.obs import get_logger
from repro.obs.profiling import PHASE_ORCH_TICK, PHASE_RECLAIM_PLAN

RECLAIMERS = ("lyra", "random", "scf")

logger = get_logger("orchestrator")


class PredictorUnavailable(RuntimeError):
    """The usage predictor cannot produce a forecast right now.

    Raised by (possibly fault-wrapped) predictors; the orchestrator
    reacts by degrading to a reactive safety-margin policy instead of
    crashing the loaning loop.
    """


class ResourceOrchestrator:
    """Moves whole servers between the inference and training whitelists.

    Args:
        reclaimer: ``"lyra"``, ``"random"`` or ``"scf"``.
        headroom: Inference capacity never loaned (§7.1: 2 %).
        seed: RNG seed for the Random reclaimer.
        predictor: Optional callable mapping a recent utilization history
            (list of floats, oldest first) to the predicted utilization
            of the next interval; used to reclaim ahead of traffic rises.
        scale_in_first: Vacate flexible server groups before preempting
            (§5.3); disabled when elastic scaling is off.
    """

    def __init__(
        self,
        reclaimer: str = "lyra",
        headroom: float = 0.02,
        seed: int = 0,
        predictor: Optional[Callable[[list], float]] = None,
        scale_in_first: bool = True,
        window: int = 10,
    ):
        if reclaimer not in RECLAIMERS:
            raise ValueError(f"unknown reclaimer {reclaimer!r}; use {RECLAIMERS}")
        self.reclaimer = reclaimer
        self.headroom = headroom
        self.rng = random.Random(seed)
        self.predictor = predictor
        self.scale_in_first = scale_in_first
        self.window = window
        self._history: list = []
        self._target_history: list = []
        self._surplus_ticks = 0
        #: fault-injection hook: ``predictor_down(now)`` -> True forces
        #: the degraded (reactive safety-margin) posture for this tick
        self.predictor_down: Optional[Callable[[float], bool]] = None
        #: extra headroom held while the predictor is unavailable —
        #: without a forecast, spikes cannot be seen coming
        self.degraded_headroom: float = 0.15
        #: most conservative degraded posture: reclaim only, no new loans
        self.freeze_loans_when_degraded: bool = False
        self._degraded_tick = False
        self._forecast_capped = False
        #: decision inputs of the latest tick, for the provenance ledger
        #: (built only while the run is traced)
        self._last_inputs: Optional[dict] = None

    # ------------------------------------------------------------------
    def target_loanable(self, sim: "Simulation") -> int:
        """Servers the inference side can have on loan right now.

        While the predictor is unavailable (it raises
        :class:`PredictorUnavailable`, or the fault-injection
        ``predictor_down`` hook says so) the orchestrator degrades
        gracefully: it stops forecasting and instead holds
        ``degraded_headroom`` extra reactive slack, since a spike can no
        longer be seen coming.
        """
        trace = sim.inference_trace
        self._forecast_capped = False
        if trace is None:
            return 0
        target = trace.loanable_at(sim.now, headroom=self.headroom)
        self._history.append(trace.utilization_at(sim.now))
        self._degraded_tick = (
            self.predictor_down is not None and self.predictor_down(sim.now)
        )
        if (
            not self._degraded_tick
            and self.predictor is not None
            and len(self._history) >= self.window
        ):
            try:
                predicted_util = float(
                    self.predictor(self._history[-self.window:])
                )
            except PredictorUnavailable:
                self._degraded_tick = True
            else:
                reserved = math.ceil(
                    (min(1.0, max(0.0, predicted_util)) + self.headroom)
                    * trace.num_servers
                )
                predicted_target = max(0, trace.num_servers - reserved)
                self._forecast_capped = predicted_target < target
                target = min(target, predicted_target)
        if self._degraded_tick:
            safety = min(0.99, self.headroom + self.degraded_headroom)
            target = trace.loanable_at(sim.now, headroom=safety)
            sim.metrics.registry.counter("resilience.degraded_ticks").inc()
            sim.trace(
                "recovery.predictor_degraded", headroom=safety,
                freeze_loans=self.freeze_loans_when_degraded,
            )
        return target

    def training_need_servers(self, sim: "Simulation", supply: int = 10**9) -> int:
        """Loaned servers the training side can actually use right now.

        Counts the loaned servers currently hosting workers, plus the
        servers needed (at the §5.2 normalization cost) by pending
        loan-eligible base demand and by unmet flexible demand of
        loan-eligible elastic jobs.  Loaning beyond this would only park
        idle hardware in the training whitelist.
        """
        busy = sum(1 for s in sim.pair.training.on_loan_servers if not s.idle)
        inference_servers = sim.pair.inference.servers
        if inference_servers:
            reference = inference_servers[0]
        else:
            loaned = sim.pair.training.on_loan_servers
            if not loaned:
                return busy
            reference = loaned[0]
        cost = 1.0 / reference.gpu_type.relative_compute
        gpus_per_server = reference.num_gpus

        # Pending demand only creates loan-need where it overflows the
        # free dedicated capacity (the scheduler prefers training
        # hardware for inelastic work, §5.3).
        view = getattr(sim, "view", None)
        if view is not None:
            training_free = view.dedicated_free
        else:
            training_free = sum(
                s.free_gpus for s in sim.pair.training.dedicated_servers
            )
        pending_total = sum(j.spec.base_gpus for j in sim.pending)
        supply_gpus = supply * gpus_per_server
        pending_eligible = 0
        for j in sim.pending:
            if not (j.spec.fungible or j.spec.heterogeneous):
                continue
            # A base demand that cannot fit even the full loanable pool
            # will never start on loaned hardware; it creates no need
            # (heterogeneous jobs can straddle, so they always count).
            if (
                not j.spec.heterogeneous
                and j.spec.base_gpus * cost > supply_gpus
            ):
                continue
            pending_eligible += j.spec.base_gpus
        overflow = max(0, pending_total - training_free)
        extra_gpus = min(overflow, pending_eligible)
        if sim.config.elastic:
            for job in list(sim.running.values()) + sim.pending:
                if not job.elastic:
                    continue
                if not (job.spec.fungible or job.spec.heterogeneous):
                    continue
                # A running job whose workers sit on dedicated training
                # hardware is type-locked there (§5.3) — its flexible
                # demand cannot use loaned T4s, so it creates no need.
                if job.total_workers > 0 and not (
                    job.spec.heterogeneous
                    or job.onloan_throughput_fraction() > 0
                ):
                    continue
                unmet = max(0, job.spec.max_workers - max(
                    job.total_workers, job.spec.min_workers
                ))
                extra_gpus += unmet * job.spec.gpus_per_worker
        extra_servers = math.ceil(extra_gpus * cost / gpus_per_server)
        need = busy + extra_servers
        # Keep a little slack so a scheduling epoch never stalls waiting
        # one orchestrator interval for hardware.
        return need + max(1, need // 4) if need else 0

    def plan_tick(self, sim: "Simulation") -> EpochPlan:
        """Plan one orchestrator interval: loan out or reclaim back.

        The raw loanable *supply* is smoothed with a median-of-3 filter —
        the 2 % headroom exists precisely to absorb sub-interval traffic
        bursts (§7.1), so one-sample spikes should not trigger a reclaim
        (nor should matching dips trigger loans).  The amount actually
        borrowed is additionally capped by the training side's current
        demand, so on-loan servers stay productive (Fig. 9).

        Nothing is moved here: the decisions come back as an
        :class:`~repro.core.actions.EpochPlan` of declarative
        ``LoanServers`` / ``ScaleIn`` / ``Preempt`` / ``ReclaimServers``
        actions the simulation commits through its
        :class:`~repro.core.actions.PlanExecutor` (or prices dry-run).
        """
        tick_span = sim.phase(PHASE_ORCH_TICK)
        with tick_span:
            actions = self._plan_actions(sim)
        plan = EpochPlan(
            now=sim.now,
            policy=f"orchestrator:{self.reclaimer}",
            actions=tuple(actions),
        )
        plan.span_id = tick_span.span_id
        plan.decision_inputs = self._last_inputs
        self._last_inputs = None
        return plan

    def tick(self, sim: "Simulation") -> None:
        """Legacy entry point: plan one interval and apply it immediately.

        Kept for direct callers (tests, harnesses); the simulator itself
        calls :meth:`plan_tick` and commits through its own executor.
        """
        plan = self.plan_tick(sim)
        executor = getattr(sim, "executor", None)
        if executor is None:
            executor = PlanExecutor(sim)
        executor.apply(plan)

    def _plan_actions(self, sim: "Simulation") -> list:
        self._target_history.append(self.target_loanable(sim))
        recent = self._target_history[-3:]
        supply = sorted(recent)[len(recent) // 2]
        need = self.training_need_servers(sim, supply)
        target = min(supply, need)
        current = sim.pair.loaned_count
        if sim.tracer.enabled:
            # Provenance: what the loaning decision saw this interval.
            # ``supply`` is the smoothed inference-side offer, ``need``
            # the training-side demand; a forecast-lowered supply or a
            # degraded predictor shows up here and in the trigger kind.
            self._last_inputs = {
                "supply": supply,
                "raw_target": self._target_history[-1],
                "need": need,
                "target": target,
                "current": current,
                "surplus_ticks": self._surplus_ticks,
                "predictor": self.predictor is not None,
                "forecast_capped": self._forecast_capped,
                "degraded": self._degraded_tick,
            }
        if target > current:
            self._surplus_ticks = 0
            if self._degraded_tick and self.freeze_loans_when_degraded:
                return []  # degraded posture: reclaim only, no new loans
            ids = sim.rm.peek_loanable(target - current)
            if ids:
                return [LoanServers(server_ids=tuple(ids),
                                    requested=target - current)]
            return []
        if supply < current:
            # Inference-driven: the lender wants servers back now.
            self._surplus_ticks = 0
            return self._plan_reclaim_actions(
                sim, current - supply, record_metrics=True
            )
        if target < current:
            # Demand-driven surplus: return idle servers only after the
            # surplus persists a few intervals (avoids loan/return
            # thrash around scheduling epochs).
            self._surplus_ticks += 1
            if self._surplus_ticks >= 3:
                self._surplus_ticks = 0
                return self._plan_reclaim_actions(
                    sim, current - target, record_metrics=False
                )
            return []
        self._surplus_ticks = 0
        return []

    # ------------------------------------------------------------------
    def _plan_route_around(
        self, sim: "Simulation", demand: int, home: Optional[str] = None
    ) -> list:
        """Pick unhealthy/straggling on-loan servers to return ahead of
        the plan.

        Bad hardware is the cheapest thing to give back: a failed server
        hosts nothing (its containers died with it) and a straggler is
        dragging its jobs down anyway.  Vacant ones are selected for
        immediate return; whatever demand remains is planned over the
        healthy candidates.  With no faults injected this scans and
        selects nothing.  ``home`` restricts the scan to one lender's
        servers (per-lender market recalls); None — the pair default —
        scans them all.  Returns ``(server_id, unhealthy, straggling)``
        triples; the scan is pure — the executor does the returning.
        """
        picked = []
        for server in sim.pair.training.on_loan_servers:
            if len(picked) >= demand:
                break
            if home is not None and server.home_cluster != home:
                continue
            server_id = server.server_id
            unhealthy = not sim.rm.is_healthy(server_id)
            straggling = server.perf_factor < 1.0
            if not (unhealthy or straggling):
                continue
            if sim.rm.containers_on(server_id):
                continue  # still hosts workers; leave it to the planner
            picked.append((server_id, unhealthy, straggling))
        return picked

    def _plan(self, sim: "Simulation", demand: int,
              exclude: tuple = (), home: Optional[str] = None) -> ReclaimPlan:
        """Delegate server selection to the configured reclaim planner.

        ``exclude`` holds server ids a route-around action earlier in the
        same plan will already have returned by the time this plan's
        selection commits — they are no longer candidates (the legacy
        path returned them before planning; healthy stragglers would
        otherwise be counted twice).  ``home`` restricts candidates to
        one lender's on-loan servers (market recalls are per lender).
        """
        skip = set(exclude)
        candidates = [
            s for s in sim.pair.training.on_loan_servers
            if s.server_id not in skip and sim.rm.is_healthy(s.server_id)
        ]
        if home is not None:
            candidates = [s for s in candidates if s.home_cluster == home]
        # Contract-aware preference: when mature contracts alone can
        # satisfy the demand, keep immature (penalty-bearing) loans out
        # of the candidate pool.  Only a live market has contracts with
        # teeth; the degenerate pair skips this so selection is
        # byte-identical to the plain ClusterPair path.
        contracts = getattr(sim.pair, "contracts", None)
        if contracts and getattr(sim.pair, "market_active", False):
            now = getattr(sim.pair, "clock", 0.0)
            mature = [
                s for s in candidates
                if s.server_id not in contracts
                or contracts[s.server_id].mature(now)
            ]
            if len(mature) >= demand:
                candidates = mature
        if self.reclaimer == "random":
            return plan_reclaim_random(candidates, sim.jobs, demand, rng=self.rng)
        if self.reclaimer == "scf":
            return plan_reclaim_scf(candidates, sim.jobs, demand)
        return plan_reclaim_lyra(
            candidates, sim.jobs, demand, scale_in_first=self.scale_in_first
        )

    def _plan_reclaim_actions(
        self,
        sim: "Simulation",
        demand: int,
        record_metrics: bool = True,
        with_costs: Optional[bool] = None,
        lender: Optional[str] = None,
    ) -> list:
        """Turn one reclaim demand into a declarative action sequence.

        Ordering mirrors the legacy execution exactly: route-around
        returns first, then per-job scale-ins (no preemption), then the
        plan's preemptions, then the server returns with the planner's
        metrics snapshot (demand, free servers, collateral, per-server
        preemption costs) attached for the RECLAIM log.  ``lender``
        scopes the whole sequence to one member cluster's servers (the
        capacity broker recalls per lender); None is the pair behavior.
        """
        actions: list = []
        health = self._plan_route_around(sim, demand, home=lender)
        routed_ids: tuple = ()
        if health:
            routed_ids = tuple(sid for sid, _, _ in health)
            actions.append(ReclaimServers(
                server_ids=routed_ids, demand=demand, route_around=True,
                health=tuple(health), record_metrics=record_metrics,
                lender=lender,
            ))
            demand -= len(health)
            if demand <= 0:
                return actions
        with sim.phase(PHASE_RECLAIM_PLAN):
            plan = self._plan(sim, demand, exclude=routed_ids, home=lender)
        if not plan.servers:
            return actions
        # Per-server preemption costs (Table 1's metric), captured at
        # plan time while the placements the costs describe still exist.
        if with_costs is None:
            with_costs = sim.tracer.enabled
        costs = None
        if with_costs:
            view = getattr(sim, "view", None)
            if view is not None:
                # served from the view's cached per-server job-fraction
                # index (rebuilt only when a delta arrived)
                costs = tuple(
                    (sid, round(view.reclaim_cost(sid), 4))
                    for sid in plan.servers
                    if sid in sim.pair.training
                )
            else:
                costs = tuple(
                    (sid, round(
                        server_preemption_cost(sim.pair.training.get(sid),
                                               sim.jobs), 4,
                    ))
                    for sid in plan.servers
                    if sid in sim.pair.training
                )
        # 1. Scale elastic jobs in (no preemption).
        for job_id, per_server in plan.scaled_in.items():
            if job_id in sim.running:
                actions.append(ScaleIn(
                    job_id=job_id, removals=tuple(per_server.items()),
                    workers=0, delta=0, eta=0.0, staged=False,
                ))
        # 2. Preempt the jobs the plan sacrificed.
        for job_id in plan.preempted_jobs:
            if job_id in sim.running:
                actions.append(Preempt(job_id=job_id, cause="reclaim"))
        # 3. Return the vacated servers, metrics snapshot attached.
        actions.append(ReclaimServers(
            server_ids=tuple(plan.servers),
            demand=demand,
            preempted=tuple(plan.preempted_jobs),
            scaled_in=tuple(sorted(plan.scaled_in)),
            free_servers=plan.free_servers,
            collateral_gpus=plan.collateral_gpus,
            costs=costs,
            record_metrics=record_metrics,
            lender=lender,
        ))
        return actions

    def plan_reclaim(self, sim: "Simulation", demand: int,
                     record_metrics: bool = True) -> EpochPlan:
        """Plan reclaiming ``demand`` on-loan servers, without applying.

        The what-if entry point (``repro whatif``): always prices
        per-server preemption costs regardless of tracing, and never
        touches the loan/return state — apply the returned plan with
        ``dry_run=True`` to get its cost without moving anything.  Note
        the Random reclaimer draws from the orchestrator's RNG even when
        planning, so a priced-but-discarded plan advances that stream.
        """
        if demand <= 0:
            return EpochPlan(
                now=sim.now,
                policy=f"orchestrator:{self.reclaimer}",
                actions=(),
            )
        with sim.phase(PHASE_ORCH_TICK):
            actions = self._plan_reclaim_actions(
                sim, demand, record_metrics=record_metrics, with_costs=True
            )
        return EpochPlan(
            now=sim.now,
            policy=f"orchestrator:{self.reclaimer}",
            actions=tuple(actions),
        )
