"""Incrementally-maintained scheduling state (the ClusterView layer).

The paper's cluster runs tens of thousands of jobs over thousands of GPUs
with a scheduler triggered at every arrival, completion and capacity
change (§3, §7.1).  Recomputing the world from scratch at each epoch —
scanning every server for free pools, rescanning all servers per placed
job, re-sorting the whole pending queue — makes the hot path
O(epochs × jobs × servers).  :class:`ClusterView` replaces those scans
with state that is maintained *incrementally*:

* cached **pool totals** (free dedicated / free on-loan GPUs) so
  :meth:`pools` is O(1) instead of O(servers);
* a **free-capacity index** bucketing servers by ``(on_loan, gpu type)``
  and current free-GPU level, so the placement engine asks "servers of
  type T with ≥ c free GPUs" instead of filtering the whole cluster;
* deterministic per-type **on-loan cost** derived from the set of loaned
  GPU types (not from iteration order);
* a cached **pending-queue ordering** per policy, recomputed only when
  the queue actually changed;
* a cached per-server **job-fraction (preemption-cost) index** consumed
  by the orchestrator's reclaim path.

Invalidation contract
---------------------

The view is *delta-maintained*: it never polls.  Every mutation point
must notify it:

* ``Server.allocate`` / ``Server.release`` fire the server's
  ``_on_change`` hook, wired by :meth:`Cluster.attach_view` — this covers
  job start, finish, scale-out, scale-in and preemption, whether booked
  directly or through the :class:`~repro.rm.manager.ResourceManager`;
* ``Cluster.add_server`` / ``Cluster.remove_server`` call
  :meth:`server_added` / :meth:`server_removed` — this covers capacity
  loaning and reclaiming (:class:`~repro.cluster.cluster.ClusterPair`
  routes through them);
* the :class:`~repro.simulator.simulation.Simulation` calls
  :meth:`note_queue_change` on every pending-queue mutation (arrival,
  activation, preemption re-queue) and :meth:`bump` on events the books
  cannot see (node failure/recovery, server degradation).

Every delta increments :attr:`version`; consumers cache derived results
keyed by the version, and the simulator skips a scheduling epoch
entirely when an idempotent policy would re-run against an unchanged
version.  :meth:`assert_consistent` checks the live state against a
from-scratch rebuild (the property-test contract).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.core.allocation import Pools
from repro.core.reclaim import preemption_cost_index

#: Bucket key: (on_loan, gpu type name).
BucketKey = Tuple[bool, str]


def deterministic_onloan_cost(
    rel_computes: Sequence[float], default: float = 3.0
) -> float:
    """The §5.2 on-loan cost factor, made iteration-order independent.

    With heterogeneous loaned hardware the historical scan derived the
    cost from whichever on-loan server happened to iterate last.  The
    deterministic rule: charge the cost of the *weakest* loaned GPU type
    (``max`` of ``1/relative_compute``) — conservative in the only
    direction that matters, since the allocator uses the cost to decide
    whether normalized demand fits the physical on-loan pool and must
    never overcommit it.  Falls back to ``default`` when nothing is on
    loan, and never drops below 1 (loaned GPUs are never *stronger*
    per-GPU bookkeeping-wise, §7.5).
    """
    if not rel_computes:
        return max(1.0, default)
    return max(1.0, max(1.0 / rel for rel in rel_computes))


class ClusterView:
    """Delta-maintained scheduling state over one (training) cluster."""

    #: backend name, matching ``SimulationConfig.view_backend``;
    #: subclasses that change the storage layout override this
    backend = "incremental"

    def __init__(
        self,
        cluster: Cluster,
        default_onloan_cost: float = 3.0,
        jobs: Optional[Mapping[int, "Job"]] = None,
        attach: bool = True,
    ):
        self.cluster = cluster
        self.default_onloan_cost = default_onloan_cost
        #: live job table (set by the simulation); needed only for the
        #: reclaim-cost index
        self.jobs = jobs
        #: bumped on every delta; consumers key caches off it
        self.version = 0
        # ---- indexed state (all rebuilt by :meth:`rebuild`) ----
        self._keys: Dict[str, BucketKey] = {}
        self._levels: Dict[str, int] = {}
        self._buckets: Dict[BucketKey, Dict[int, Dict[str, Server]]] = {}
        self._rel: Dict[str, float] = {}
        self._free_total: Dict[bool, int] = {False: 0, True: 0}
        self._onloan_type_servers: Dict[str, int] = {}
        #: on-loan servers currently hosting at least one allocation
        #: (the candidate set of the reclaim cost index)
        self._alloc_onloan: Set[str] = set()
        # ---- version-keyed caches ----
        self._pending_cache: Dict[str, Tuple[int, List["Job"]]] = {}
        self._cost_cache: Optional[Tuple[int, Dict[str, float]]] = None
        self.rebuild()
        if attach:
            cluster.attach_view(self)

    # ------------------------------------------------------------------
    # serialization: the version-keyed caches are pure functions of
    # (indexed state, version) and recompute on first miss, so snapshots
    # drop them.  The indexed state itself IS pickled — rebuilding it
    # would re-key the bucket dicts in cluster order instead of the
    # delta-evolved order a continuous run carries, and restore must be
    # bit-faithful to that run.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_pending_cache"] = {}
        state["_cost_cache"] = None
        return state

    # ------------------------------------------------------------------
    # full rebuild (initialisation and the property-test reference)
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Recompute every index from the cluster's current state."""
        self._keys.clear()
        self._levels.clear()
        self._buckets.clear()
        self._free_total = {False: 0, True: 0}
        self._onloan_type_servers = {}
        self._alloc_onloan.clear()
        for server in self.cluster.servers:
            self._index(server)
        self.version += 1

    def _index(self, server: Server) -> None:
        sid = server.server_id
        key = (server.on_loan, server.gpu_type.name)
        self._keys[sid] = key
        self._rel[key[1]] = server.gpu_type.relative_compute
        level = server.free_gpus
        self._levels[sid] = level
        if level > 0:
            self._buckets.setdefault(key, {}).setdefault(level, {})[sid] = server
        self._free_total[key[0]] += level
        if key[0]:
            self._onloan_type_servers[key[1]] = (
                self._onloan_type_servers.get(key[1], 0) + 1
            )
            if server.allocations:
                self._alloc_onloan.add(sid)

    def _deindex(self, server: Server) -> None:
        sid = server.server_id
        key = self._keys.pop(sid)
        level = self._levels.pop(sid)
        if level > 0:
            self._drop_from_bucket(key, level, sid)
        self._free_total[key[0]] -= level
        if key[0]:
            count = self._onloan_type_servers.get(key[1], 0) - 1
            if count > 0:
                self._onloan_type_servers[key[1]] = count
            else:
                self._onloan_type_servers.pop(key[1], None)
            self._alloc_onloan.discard(sid)

    def _drop_from_bucket(self, key: BucketKey, level: int, sid: str) -> None:
        members = self._buckets[key][level]
        del members[sid]
        if not members:
            del self._buckets[key][level]
            if not self._buckets[key]:
                del self._buckets[key]

    # ------------------------------------------------------------------
    # delta entry points
    # ------------------------------------------------------------------
    def server_changed(self, server: Server) -> None:
        """A member server's books changed (allocate/release hook)."""
        sid = server.server_id
        key = self._keys.get(sid)
        if key is None:  # not (or no longer) a member of this cluster
            return
        old = self._levels[sid]
        new = server.free_gpus
        if new != old:
            if old > 0:
                self._drop_from_bucket(key, old, sid)
            if new > 0:
                self._buckets.setdefault(key, {}).setdefault(new, {})[sid] = (
                    server
                )
            self._levels[sid] = new
            self._free_total[key[0]] += new - old
        if key[0]:
            if server.allocations:
                self._alloc_onloan.add(sid)
            else:
                self._alloc_onloan.discard(sid)
        self.version += 1

    def server_added(self, server: Server) -> None:
        self._index(server)
        self.version += 1

    def server_removed(self, server: Server) -> None:
        self._deindex(server)
        self.version += 1

    def note_queue_change(self) -> None:
        """The simulation's pending queue changed (arrive/start/requeue)."""
        self.version += 1

    def bump(self) -> None:
        """Invalidate for a state change the GPU books cannot express
        (node health transitions, straggler degradation)."""
        self.version += 1

    def note_group_change(self, server: Server) -> None:
        """A member server's placement group was (re)assigned.

        The base view reads ``Server.group`` live and the accompanying
        allocate/release delta already bumped the version, so this is a
        no-op here; backends that *mirror* group state (the array view)
        override it.  Placement and the plan journal's rollback are the
        only two call sites — group changes nowhere else while a server
        is a member.
        """

    def note_server_attrs(self, server: Server) -> None:
        """A member server's non-book attributes changed (perf factor).

        Equivalent to :meth:`bump` for this backend; mirroring backends
        additionally refresh the server's column entries.  Callers must
        invoke this *after* mutating the attribute.
        """
        self.bump()

    # ------------------------------------------------------------------
    # queries: pools and on-loan cost
    # ------------------------------------------------------------------
    @property
    def dedicated_free(self) -> int:
        """Free GPUs on dedicated training servers — O(1)."""
        return self._free_total[False]

    @property
    def onloan_free(self) -> int:
        """Free GPUs on on-loan servers — O(1)."""
        return self._free_total[True]

    def onloan_cost(self) -> float:
        """Deterministic §5.2 cost factor of the loaned hardware."""
        return deterministic_onloan_cost(
            [self._rel[t] for t in self._onloan_type_servers],
            default=self.default_onloan_cost,
        )

    def pools(self) -> Pools:
        """The free-capacity pools, without scanning a single server."""
        return Pools(
            training=self._free_total[False],
            onloan=self._free_total[True],
            onloan_cost=self.onloan_cost(),
        )

    # ------------------------------------------------------------------
    # queries: placement candidates
    # ------------------------------------------------------------------
    def rel_compute(self, type_name: str) -> float:
        return self._rel[type_name]

    @property
    def buckets(self) -> Mapping[BucketKey, Dict[int, Dict[str, Server]]]:
        """Free-capacity index: ``(on_loan, type) -> {level: {id: server}}``.

        Only servers with at least one free GPU appear.  Read-only —
        consumers must never mutate the returned structures.
        """
        return self._buckets

    def candidates(
        self,
        cost_for_type: Callable[[str], int],
        domain_ok: Callable[[bool], bool],
        type_lock: Optional[str] = None,
    ) -> List[Server]:
        """Servers able to host ≥ 1 worker at per-type GPU cost.

        Exactly the set a full scan would produce (free capacity, domain
        eligibility, GPU-type lock) in unspecified order — callers apply
        their own ranking.  Health filtering stays with the caller (the
        placement engine), since node health lives in the RM.
        """
        out: List[Server] = []
        for (on_loan, tname), levels in self._buckets.items():
            if type_lock is not None and tname != type_lock:
                continue
            if not domain_ok(on_loan):
                continue
            cost = cost_for_type(tname)
            if cost <= 0:
                continue
            for level, members in levels.items():
                if level >= cost:
                    out.extend(members.values())
        return out

    def domain_capacity(
        self, on_loan: bool, cost_for_type: Callable[[str], int]
    ) -> int:
        """Whole workers one domain can still host at per-type cost."""
        total = 0
        for (ol, tname), levels in self._buckets.items():
            if ol != on_loan:
                continue
            cost = cost_for_type(tname)
            if cost <= 0:
                continue
            for level, members in levels.items():
                total += (level // cost) * len(members)
        return total

    # ------------------------------------------------------------------
    # queries: pending-queue ordering
    # ------------------------------------------------------------------
    def ordered_pending(
        self,
        cache_key: str,
        key_fn: Callable[["Job"], Tuple],
        pending: Sequence["Job"],
    ) -> List["Job"]:
        """``sorted(pending, key=key_fn)``, cached until the next delta.

        Valid only for *static* ordering keys (keys that cannot change
        without a tracked delta, e.g. submit time or estimated
        duration); time-varying orders (least-attained-service) must
        sort fresh each epoch.  The returned list is shared — callers
        must treat it as read-only.
        """
        cached = self._pending_cache.get(cache_key)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        ordered = sorted(pending, key=key_fn)
        self._pending_cache[cache_key] = (self.version, ordered)
        return ordered

    # ------------------------------------------------------------------
    # queries: reclaim cost (per-server job-fraction index)
    # ------------------------------------------------------------------
    def reclaim_cost_index(self) -> Dict[str, float]:
        """Preemption cost of every allocated on-loan server (Table 1's
        server-fraction model), cached until the next delta."""
        if self._cost_cache is not None and self._cost_cache[0] == self.version:
            return self._cost_cache[1]
        jobs = self.jobs if self.jobs is not None else {}
        servers = [
            self.cluster.get(sid) for sid in sorted(self._alloc_onloan)
        ]
        index = preemption_cost_index(servers, jobs)
        self._cost_cache = (self.version, index)
        return index

    def reclaim_cost(self, server_id: str) -> float:
        """Preemption cost of one server (0 for unallocated servers)."""
        return self.reclaim_cost_index().get(server_id, 0.0)

    # ------------------------------------------------------------------
    # consistency (the property-test contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """The indexed state as plain comparable structures."""
        return {
            "levels": dict(self._levels),
            "keys": dict(self._keys),
            "buckets": {
                key: {lvl: set(members) for lvl, members in levels.items()}
                for key, levels in self._buckets.items()
            },
            "free_total": dict(self._free_total),
            "onloan_types": dict(self._onloan_type_servers),
            "alloc_onloan": set(self._alloc_onloan),
            "onloan_cost": self.onloan_cost(),
        }

    def assert_consistent(self) -> None:
        """Raise AssertionError unless the live state equals a rebuild."""
        reference = ClusterView(
            self.cluster,
            default_onloan_cost=self.default_onloan_cost,
            jobs=self.jobs,
            attach=False,
        )
        live, fresh = self.snapshot(), reference.snapshot()
        for field in live:
            assert live[field] == fresh[field], (
                f"ClusterView drift in {field!r}:\n"
                f"  incremental: {live[field]!r}\n"
                f"  rebuilt:     {fresh[field]!r}"
            )
        cost = self.onloan_cost()
        assert cost >= 1.0, (
            f"on-loan cost {cost!r} < 1.0: the §5.2 weakest-type "
            f"normalization guarantees at least one physical GPU per "
            f"normalized GPU — the GPU-type index is corrupt"
        )
