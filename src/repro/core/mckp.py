"""Multiple-choice knapsack solver (§5.2, phase two).

Lyra casts the distribution of leftover GPUs to elastic jobs' flexible
demand as a multiple-choice knapsack problem (MCKP): every elastic job is a
*group*; each possible flexible allocation of that job is an *item* whose
weight is its GPU count and whose value is the resulting JCT reduction
(Fig. 6).  At most one item per group may be chosen.  MCKP is NP-hard but
pseudo-polynomial dynamic programming solves production-sized instances in
milliseconds (the paper reports 0.02 s for 354 items / 245 GPUs).

This module is deliberately generic — items carry an opaque payload — so it
is reusable and property-testable against brute force.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

try:  # the array fast path; the scalar DP below is the full fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None


@dataclass(frozen=True)
class Item:
    """One candidate allocation inside a group.

    Attributes:
        weight: Integral resource cost (GPUs).
        value: Benefit of picking this item (seconds of JCT reduction).
        payload: Opaque caller data carried through to the solution.
    """

    weight: int
    value: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")


def _dp_scalar(
    groups: Sequence[Sequence[Item]], capacity: int
) -> Tuple[Sequence[float], List[Sequence[int]]]:
    """The reference DP: pure-Python row updates."""
    dp = [0.0] * (capacity + 1)
    choice: List[Sequence[int]] = []
    for group in groups:
        new_dp = dp[:]  # taking nothing from this group is always valid
        taken = [-1] * (capacity + 1)
        for idx, item in enumerate(group):
            if item.weight > capacity or item.value <= 0:
                continue
            for cap in range(item.weight, capacity + 1):
                candidate = dp[cap - item.weight] + item.value
                if candidate > new_dp[cap]:
                    new_dp[cap] = candidate
                    taken[cap] = idx
        dp = new_dp
        choice.append(taken)
    return dp, choice


def _dp_numpy(
    groups: Sequence[Sequence[Item]], capacity: int
) -> Tuple[Sequence[float], List[Sequence[int]]]:
    """The vectorized DP: per-item shifted-row updates.

    Bit-exact with :func:`_dp_scalar`: items are still visited in order
    and each update computes ``dp[c - w] + v`` — the identical IEEE-754
    double operation the scalar inner loop performs, just over the whole
    capacity row at once.  (Per-*group* batching via reductions is NOT
    used: numpy's pairwise summation/maximum trees can round differently
    from a left-to-right scan, which would break the golden-log pin.)
    """
    dp = _np.zeros(capacity + 1, dtype=_np.float64)
    choice: List[Sequence[int]] = []
    for group in groups:
        new_dp = dp.copy()  # taking nothing is always valid
        taken = _np.full(capacity + 1, -1, dtype=_np.int64)
        for idx, item in enumerate(group):
            w = item.weight
            if w > capacity or item.value <= 0:
                continue
            candidate = dp[: capacity + 1 - w] + item.value
            target = new_dp[w:]
            better = candidate > target
            target[better] = candidate[better]
            taken[w:][better] = idx
        dp = new_dp
        choice.append(taken)
    return dp, choice


def solve_mckp(
    groups: Sequence[Sequence[Item]], capacity: int,
    use_numpy: Optional[bool] = None,
) -> Tuple[float, List[Optional[Item]]]:
    """Solve MCKP by dynamic programming.

    Args:
        groups: One sequence of candidate items per group; picking zero
            items from a group is always allowed.
        capacity: Knapsack capacity (non-negative integer).
        use_numpy: Force the vectorized (True) or scalar (False) DP
            kernel; None picks numpy when available.  Both kernels are
            bit-exact (property-pinned), so this is a performance knob
            only.

    Returns:
        ``(total_value, choices)`` where ``choices[i]`` is the item chosen
        from ``groups[i]`` or None.  Runs in ``O(len(items) * capacity)``
        time and ``O(len(groups) * capacity)`` space.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")

    num_groups = len(groups)
    if use_numpy is None:
        use_numpy = _np is not None
    if use_numpy and _np is None:
        raise RuntimeError("use_numpy=True but numpy is unavailable")
    if use_numpy:
        dp, choice = _dp_numpy(groups, capacity)
        # first index achieving the max, matching the scalar argmax walk
        cap = int(_np.argmax(dp))
    else:
        dp, choice = _dp_scalar(groups, capacity)
        cap = max(range(capacity + 1), key=lambda c: dp[c])

    # Reconstruct the chosen item per group by walking groups backwards.
    choices: List[Optional[Item]] = [None] * num_groups
    best_value = float(dp[cap])
    for g in range(num_groups - 1, -1, -1):
        idx = int(choice[g][cap])
        if idx >= 0:
            item = groups[g][idx]
            choices[g] = item
            cap -= item.weight
    return best_value, choices


def solution_cost(
    choices: Sequence[Optional[Item]],
) -> Tuple[float, int]:
    """``(total_value, total_weight)`` of a choice vector.

    The one shared accounting both solvers' outputs are scored with —
    property tests and the repro.oracle conformance checks use it to
    certify that a reported optimum is consistent with (and feasible
    for) the items actually chosen.
    """
    value = sum(item.value for item in choices if item is not None)
    weight = sum(item.weight for item in choices if item is not None)
    return value, weight


def solve_mckp_bruteforce(
    groups: Sequence[Sequence[Item]], capacity: int
) -> Tuple[float, List[Optional[Item]]]:
    """Exhaustive MCKP solver for testing (exponential; keep inputs tiny)."""
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    best_value = 0.0
    best_choice: List[Optional[Item]] = [None] * len(groups)
    options = [[None] + list(group) for group in groups]
    for combo in itertools.product(*options):
        weight = sum(item.weight for item in combo if item is not None)
        if weight > capacity:
            continue
        value = sum(item.value for item in combo if item is not None)
        if value > best_value:
            best_value = value
            best_choice = list(combo)
    return best_value, best_choice
