"""Multiple-choice knapsack solver (§5.2, phase two).

Lyra casts the distribution of leftover GPUs to elastic jobs' flexible
demand as a multiple-choice knapsack problem (MCKP): every elastic job is a
*group*; each possible flexible allocation of that job is an *item* whose
weight is its GPU count and whose value is the resulting JCT reduction
(Fig. 6).  At most one item per group may be chosen.  MCKP is NP-hard but
pseudo-polynomial dynamic programming solves production-sized instances in
milliseconds (the paper reports 0.02 s for 354 items / 245 GPUs).

This module is deliberately generic — items carry an opaque payload — so it
is reusable and property-testable against brute force.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Item:
    """One candidate allocation inside a group.

    Attributes:
        weight: Integral resource cost (GPUs).
        value: Benefit of picking this item (seconds of JCT reduction).
        payload: Opaque caller data carried through to the solution.
    """

    weight: int
    value: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")


def solve_mckp(
    groups: Sequence[Sequence[Item]], capacity: int
) -> Tuple[float, List[Optional[Item]]]:
    """Solve MCKP by dynamic programming.

    Args:
        groups: One sequence of candidate items per group; picking zero
            items from a group is always allowed.
        capacity: Knapsack capacity (non-negative integer).

    Returns:
        ``(total_value, choices)`` where ``choices[i]`` is the item chosen
        from ``groups[i]`` or None.  Runs in ``O(len(items) * capacity)``
        time and ``O(len(groups) * capacity)`` space.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")

    num_groups = len(groups)
    # dp[c] = best value using groups processed so far within capacity c.
    dp = [0.0] * (capacity + 1)
    # choice[g][c] = index of item taken from group g at capacity c, or -1.
    choice: List[List[int]] = []

    for group in groups:
        new_dp = dp[:]  # taking nothing from this group is always valid
        taken = [-1] * (capacity + 1)
        for idx, item in enumerate(group):
            if item.weight > capacity or item.value <= 0:
                continue
            for cap in range(item.weight, capacity + 1):
                candidate = dp[cap - item.weight] + item.value
                if candidate > new_dp[cap]:
                    new_dp[cap] = candidate
                    taken[cap] = idx
        dp = new_dp
        choice.append(taken)

    # Reconstruct the chosen item per group by walking groups backwards.
    choices: List[Optional[Item]] = [None] * num_groups
    cap = max(range(capacity + 1), key=lambda c: dp[c])
    best_value = dp[cap]
    for g in range(num_groups - 1, -1, -1):
        idx = choice[g][cap]
        if idx >= 0:
            item = groups[g][idx]
            choices[g] = item
            cap -= item.weight
    return best_value, choices


def solution_cost(
    choices: Sequence[Optional[Item]],
) -> Tuple[float, int]:
    """``(total_value, total_weight)`` of a choice vector.

    The one shared accounting both solvers' outputs are scored with —
    property tests and the repro.oracle conformance checks use it to
    certify that a reported optimum is consistent with (and feasible
    for) the items actually chosen.
    """
    value = sum(item.value for item in choices if item is not None)
    weight = sum(item.weight for item in choices if item is not None)
    return value, weight


def solve_mckp_bruteforce(
    groups: Sequence[Sequence[Item]], capacity: int
) -> Tuple[float, List[Optional[Item]]]:
    """Exhaustive MCKP solver for testing (exponential; keep inputs tiny)."""
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    best_value = 0.0
    best_choice: List[Optional[Item]] = [None] * len(groups)
    options = [[None] + list(group) for group in groups]
    for combo in itertools.product(*options):
        weight = sum(item.weight for item in combo if item is not None)
        if weight > capacity:
            continue
        value = sum(item.value for item in combo if item is not None)
        if value > best_value:
            best_value = value
            best_choice = list(combo)
    return best_value, best_choice
