"""The driver-agnostic scheduling kernel.

Lyra ran as a *live* scheduler serving a production cluster; the batch
simulator and a long-running daemon are two clocks around the same
decision pipeline.  This module is that pipeline, carved out of the
simulator so both can share it byte-for-byte:

* :class:`SchedulerKernel` owns the scheduling state (job table, pending
  queue, running set, the :class:`~repro.core.view.ClusterView`, the
  :class:`~repro.core.actions.PlanExecutor`) and the epoch pipeline —
  collect arrivals/completions as triggers, let the policy decide
  against a :class:`~repro.core.actions.PlanTransaction`, validate and
  commit the resulting :class:`~repro.core.actions.EpochPlan` through
  the executor, with provenance, metrics, audits and recovery hooks
  along the way.  The kernel never reads a clock or arms a timer
  itself: *when* is always delegated to its driver.
* :class:`Driver` is the protocol a clock source implements to host the
  kernel: a ``now`` property plus ``schedule``/``schedule_after`` timer
  primitives and an ``epoch_finished`` notification.  The simulator
  (:class:`~repro.simulator.simulation.Simulation`) implements it over
  the discrete-event :class:`~repro.simulator.engine.Engine`; the
  serving daemon (:mod:`repro.serve`) implements it over an asyncio
  event loop mapped to wall-clock time.

Because drivers only decide *when* hooks run — never *what* they do —
two drivers replaying the same external events in the same order make
identical decisions; the golden equivalence suite pins the simulated
driver against the pre-split behaviour byte-for-byte.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.cluster.cluster import Cluster, ClusterPair
from repro.cluster.job import Job, JobSpec, JobStatus
from repro.core.actions import PlanExecutor
from repro.core.placement import PlacementEngine
from repro.core.view import ClusterView
from repro.elastic.throughput import get_scaling_model
from repro.obs import Observability, get_logger
from repro.obs.profiling import PHASE_SCHEDULER_TICK
from repro.obs.provenance import (
    MAX_TRIGGERS,
    TRIGGER_ARRIVAL,
    TRIGGER_COMPLETION,
    TRIGGER_FAULT,
    TRIGGER_FORECAST,
    TRIGGER_INTERVAL,
    TRIGGER_NODE_FAILURE,
    TRIGGER_NODE_RECOVERY,
    TRIGGER_PREEMPT,
    Provenance,
    Trigger,
)
from repro.obs.tracer import CAT_JOB, CAT_ORCHESTRATOR, CAT_SCHEDULER
from repro.profiler.profiler import JobProfiler
from repro.rm.manager import ResourceManager
from repro.simulator.events import Activity, EventKind
from repro.simulator.metrics import SimulationMetrics

DAY = 86400.0

logger = get_logger("kernel")

#: Structured-trace (name, category) for each activity kind.
_TRACE_NAMES = {
    EventKind.SUBMIT: ("job.submit", CAT_JOB),
    EventKind.START: ("job.start", CAT_JOB),
    EventKind.FINISH: ("job.finish", CAT_JOB),
    EventKind.PREEMPT: ("job.preempt", CAT_JOB),
    EventKind.SCALE_OUT: ("job.scale_out", CAT_JOB),
    EventKind.SCALE_IN: ("job.scale_in", CAT_JOB),
    EventKind.LOAN: ("orchestrator.loan", CAT_ORCHESTRATOR),
    EventKind.RECLAIM: ("orchestrator.reclaim", CAT_ORCHESTRATOR),
    EventKind.SCHEDULE_EPOCH: ("scheduler.epoch", CAT_SCHEDULER),
    EventKind.MIGRATE: ("job.migrate", CAT_JOB),
}

#: Relative tolerance for "the job is done" at a completion event.
_WORK_EPS = 1e-6

#: Throughput bonus hyperparameter tuning yields above base demand (§7.4).
_TUNING_BONUS = 1.08


@dataclass
class SimulationConfig:
    """Kernel- and simulation-wide knobs.

    Attributes:
        scheduler_interval: Minimum seconds between scheduling epochs;
            epochs are additionally triggered by job/capacity events.
        orchestrator_interval: Seconds between orchestrator ticks (§7.1:
            five minutes).
        preemption_overhead: Seconds of extra work charged per preemption
            (§7.5: 63 s measured on the testbed).
        sample_interval: Seconds between usage samples.
        elastic: Master switch for elastic scaling.
        drain_limit: Extra simulated seconds allowed after the last
            arrival for the queue to drain before the run is cut off.
        scaling_model: Throughput scaling model name applied to elastic
            jobs ("linear" or "sublinear20", §7.2).
        tuned_jobs: Lyra+TunedJobs mode — hyperparameter tuning recovers
            scaling losses and adds a small throughput bonus whenever a
            job runs above its base demand (§7.4).
    """

    scheduler_interval: float = 30.0
    orchestrator_interval: float = 300.0
    preemption_overhead: float = 63.0
    sample_interval: float = 300.0
    elastic: bool = True
    drain_limit: float = 30 * DAY
    scaling_model: str = "linear"
    tuned_jobs: bool = False
    special_elastic_grouping: bool = True
    record_activities: bool = False
    #: use the §3 job profiler for runtime estimates instead of oracle
    #: durations: estimates are learned online from completed jobs
    use_profiler: bool = False
    #: mean time between node failures across the training whitelist, in
    #: seconds (None disables failure injection)
    node_mtbf: Optional[float] = None
    #: time a failed node spends unhealthy before rejoining
    node_repair_time: float = 3600.0
    failure_seed: int = 0
    #: full chaos specification (:class:`repro.faults.plan.FaultPlan`);
    #: supersedes the legacy ``node_mtbf`` knobs when set.  Typed loosely
    #: so fault-free simulations never import :mod:`repro.faults`.
    fault_plan: Optional[object] = None
    #: DEPRECATED — use ``view_backend`` instead.  ``True`` maps to the
    #: ``"incremental"`` backend, ``False`` to ``"legacy"``; passing the
    #: flag at all emits a :class:`DeprecationWarning`.  ``None`` (the
    #: default) means "not specified".
    incremental_view: Optional[bool] = None
    #: which scheduling-state backend serves the policy facades:
    #: ``"legacy"`` (full scans, no view), ``"incremental"`` (the
    #: dict-indexed ClusterView) or ``"array"`` (the numpy
    #: structure-of-arrays mirror, :mod:`repro.core.arrays`).  ``None``
    #: derives the backend from ``incremental_view`` for back-compat,
    #: defaulting to ``"incremental"``.
    #: Decisions are byte-identical across all three (golden-pinned).
    view_backend: Optional[str] = None
    #: keep every applied non-empty :class:`~repro.core.actions.EpochPlan`
    #: (as JSON dicts with pricing) in ``Simulation.plan_log`` — the
    #: ``repro run --explain`` data source
    record_plans: bool = False

    def __post_init__(self) -> None:
        if self.scheduler_interval <= 0:
            raise ValueError("scheduler_interval must be positive")
        if self.orchestrator_interval <= 0:
            raise ValueError("orchestrator_interval must be positive")
        if self.view_backend not in (None, "legacy", "incremental", "array"):
            raise ValueError(
                f"unknown view_backend {self.view_backend!r}; expected "
                f"'legacy', 'incremental' or 'array'"
            )
        if self.incremental_view is not None:
            mapped = "incremental" if self.incremental_view else "legacy"
            warnings.warn(
                f"SimulationConfig(incremental_view={self.incremental_view!r}) "
                f"is deprecated; use view_backend={mapped!r} instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def resolved_view_backend(self) -> str:
        """The effective backend name (``view_backend`` wins; else the
        deprecated ``incremental_view`` flag maps to incremental/legacy,
        defaulting to ``"incremental"`` when neither is given)."""
        if self.view_backend is not None:
            return self.view_backend
        if self.incremental_view is None:
            return "incremental"
        return "incremental" if self.incremental_view else "legacy"


class Driver:
    """The protocol a clock source implements to host a kernel.

    The kernel calls exactly four hooks; everything else about pacing —
    heartbeats, samplers, batching arrivals, drain detection — belongs
    to the driver:

    * ``now`` — the current kernel time, in seconds.  Monotone
      non-decreasing; the unit is whatever the driver's clock measures
      (simulated seconds for the engine driver, scaled wall-clock
      seconds for the serving driver).
    * ``schedule(when, callback, tag=None)`` — run ``callback`` at
      absolute kernel time ``when``.  ``tag`` is a small pickle-friendly
      tuple naming the callback for durable drivers (see
      :meth:`repro.simulator.engine.Engine.schedule`).
    * ``schedule_after(delay, callback, tag=None)`` — relative form.
    * ``epoch_finished()`` — called at the end of every scheduling
      epoch, after the plan committed and bookkeeping ran; drivers use
      it to stop a drained run (simulator) or wake drain/latency
      waiters (daemon).

    This is a structural protocol: any object with these four members
    works (:class:`~repro.simulator.simulation.Simulation` *is* its own
    driver; :class:`repro.serve.driver.WallClockDriver` is a standalone
    one).  The class body raises so accidental direct use fails loudly.
    """

    @property
    def now(self) -> float:
        raise NotImplementedError

    def schedule(
        self, when: float, callback: Callable[[], None], tag=None
    ) -> None:
        raise NotImplementedError

    def schedule_after(
        self, delay: float, callback: Callable[[], None], tag=None
    ) -> None:
        raise NotImplementedError

    def epoch_finished(self) -> None:
        raise NotImplementedError


class SchedulerKernel:
    """The clock-agnostic epoch pipeline over one training cluster pair.

    Holds every piece of scheduling state that is *not* about time —
    jobs, queues, the view, the executor, metrics, provenance — and
    exposes the transitions the paper's scheduler performs: job
    admission (:meth:`admit_job`), scheduling epochs (:meth:`run_epoch`
    via :meth:`trigger_schedule`), orchestrator epochs
    (:meth:`run_orchestrator_epoch`), preemption, node failure and
    recovery, straggler degradation, and cancellation.

    The kernel is driven: a :class:`Driver` supplies ``now`` and timers,
    and decides when to call the pipeline.  Constructing a kernel with
    ``driver=None`` (the :class:`~repro.simulator.simulation.Simulation`
    subclass does this) makes the instance its own driver — it must then
    implement the protocol itself.
    """

    def __init__(
        self,
        specs: Sequence[JobSpec],
        pair: ClusterPair,
        policy: "SchedulerPolicy",
        inference_trace=None,
        orchestrator: Optional["ResourceOrchestrator"] = None,
        config: SimulationConfig = SimulationConfig(),
        obs: Optional[Observability] = None,
        driver: Optional[Driver] = None,
    ):
        self.driver: Driver = driver if driver is not None else self
        self.pair = pair
        self.cluster: Cluster = pair.training
        self.rm = ResourceManager(pair)
        self.profiler = JobProfiler() if config.use_profiler else None
        self.policy = policy
        self.inference_trace = inference_trace
        self.orchestrator = orchestrator
        self.config = config
        self.obs = obs if obs is not None else Observability.disabled()
        self.tracer = self.obs.tracer
        self.metrics = SimulationMetrics(registry=self.obs.registry)
        self.activities: List[Activity] = []
        #: optional live event sink: called with every Activity the
        #: kernel logs (the serving daemon's streaming feed); None — the
        #: default — costs one attribute check per logged event
        self.activity_sink = None
        #: epoch triggers awaiting the next plan's provenance record;
        #: only ever populated while the tracer is enabled
        self._pending_triggers: List[Trigger] = []
        self._dropped_triggers = 0
        #: jobs that have dispatched at least once (queue-wait metric)
        self._started_once: Set[int] = set()

        self.jobs: Dict[int, Job] = {}
        self.pending: List[Job] = []
        self.running: Dict[int, Job] = {}
        #: straggling servers: ``{server_id: throughput factor}``; empty
        #: in fault-free runs, in which case every guard below is inert
        self.degraded_servers: Dict[str, float] = {}
        #: the installed :class:`~repro.faults.injector.FaultInjector`,
        #: when a fault plan is active
        self.fault_injector = None
        self._fail_times: Dict[str, float] = {}
        self._preempt_times: Dict[int, float] = {}
        self._completion_epoch: Dict[int, int] = {}
        self._tick_pending = False
        self._last_tick = -math.inf
        self._last_arrival = 0.0
        self._first_attempt_seen: Set[int] = set()
        self._hour_submissions: Dict[int, int] = {}
        self._hour_queued: Dict[int, int] = {}

        self._scaling = get_scaling_model(config.scaling_model)
        for spec in specs:
            self.add_job_spec(spec)
        self.metrics.jobs = list(self.jobs.values())
        self.metrics.submissions = len(self.jobs)

        #: incremental scheduling state; None in legacy full-scan mode
        self.view: Optional[ClusterView] = None
        backend = config.resolved_view_backend()
        if backend != "legacy":
            view_cls = ClusterView
            if backend == "array":
                from repro.core.arrays import ArrayClusterView

                view_cls = ArrayClusterView
            default_cost = (
                1.0 / pair.inference_compute
                if hasattr(pair, "inference_compute")
                else 3.0
            )
            self.view = view_cls(
                pair.training,
                default_onloan_cost=default_cost,
                jobs=self.jobs,
            )
        #: the single commit point for decision plans: every epoch's
        #: :class:`~repro.core.actions.EpochPlan` is applied through it
        self.executor = PlanExecutor(self)
        #: applied plans (JSON dicts), populated when ``record_plans``
        self.plan_log: List[dict] = []
        #: persistent placement engines, keyed by opportunistic flag
        self._engines: Dict[bool, PlacementEngine] = {}
        #: scheduling epochs skipped because no deltas arrived
        self._epochs_skipped = 0
        self._last_epoch_version: Optional[int] = None
        #: attached :class:`~repro.recovery.manager.RecoveryManager`;
        #: None (the default) keeps the run loop on the exact pre-recovery
        #: code path — no checkpoints, no WAL, no recovery allocations
        self.recovery = None

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def add_job_spec(self, spec: JobSpec) -> Job:
        """Register one job in the table (not yet pending).

        Demands are clamped to the cluster, the scaling model installed;
        the returned job enters the queue when :meth:`admit_job` runs at
        its arrival time.
        """
        job = Job(self._clamp_spec(spec))
        if job.elastic and not self.config.tuned_jobs:
            job.scaling_model = self._scaling
        self.jobs[job.job_id] = job
        self._last_arrival = max(self._last_arrival, spec.submit_time)
        return job

    def register_job(self, spec: JobSpec) -> Job:
        """Register a job *after* construction (the daemon's submit path).

        :meth:`add_job_spec` covers trace replay, where the metrics
        roster is finalized once in ``__init__``; this keeps the roster
        and submission count in step for jobs arriving at runtime.
        """
        job = self.add_job_spec(spec)
        self.metrics.jobs.append(job)
        self.metrics.submissions += 1
        return job

    def _clamp_spec(self, spec: JobSpec) -> JobSpec:
        """Cap demands at the dedicated cluster size (a real cluster
        rejects jobs larger than itself), preserving total workload."""
        capacity = self.pair.training.total_gpus
        max_fit = max(1, capacity // spec.gpus_per_worker)
        if spec.max_workers <= max_fit:
            return spec
        total_work = spec.total_work
        new_max = max_fit
        new_min = min(spec.min_workers, new_max)
        duration = total_work / (new_max * spec.gpus_per_worker)
        return replace(
            spec,
            max_workers=new_max,
            min_workers=new_min,
            duration=duration,
            elastic=spec.elastic and new_min < new_max,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def log(self, kind: EventKind, job_id: Optional[int] = None, detail=None,
            **trace_args):
        """Record one activity: calibration log plus structured trace.

        ``detail`` feeds the legacy :class:`Activity` audit trail;
        ``trace_args`` become the structured event's payload (falling
        back to ``detail`` when no richer payload is given).
        """
        if self.config.record_activities:
            self.activities.append(
                Activity(self.now, kind, job_id, detail)
            )
        if self.activity_sink is not None:
            self.activity_sink(
                Activity(self.now, kind, job_id, detail), trace_args
            )
        if self.tracer.enabled:
            name, cat = _TRACE_NAMES[kind]
            if detail is not None and "detail" not in trace_args:
                trace_args["detail"] = detail
            self.tracer.emit(
                name, ts=self.now, cat=cat, job_id=job_id,
                **trace_args,
            )

    def trace(self, name: str, job_id: Optional[int] = None, **args) -> None:
        """Emit a structured event outside the :class:`EventKind` set."""
        if self.tracer.enabled:
            self.tracer.emit(name, ts=self.now, job_id=job_id, **args)

    def phase(self, name: str):
        """Wall-clock phase timer (no-op unless profiling is enabled)."""
        return self.obs.phases.phase(name)

    def note_trigger(self, kind: str, **detail) -> None:
        """Record one cause of the next scheduling epoch (provenance).

        Call sites pair this with :meth:`trigger_schedule`; the pending
        list is consumed into the next applied plan's
        :class:`~repro.obs.provenance.Provenance`.  A no-op (no dict, no
        allocation) when the run is untraced.
        """
        if not self.tracer.enabled:
            return
        if len(self._pending_triggers) >= MAX_TRIGGERS:
            self._dropped_triggers += 1
            return
        self._pending_triggers.append(
            Trigger(
                kind=kind,
                ts=self.now,
                detail=tuple(sorted(detail.items())),
            )
        )

    def _take_provenance(
        self, plan, extra_triggers=(), consume_pending=True
    ) -> None:
        """Attach a provenance record to a freshly built plan.

        Scheduler plans consume the pending trigger list (the events
        that scheduled the epoch); orchestrator plans are driven by
        their own interval and only carry synthesized triggers, leaving
        the pending list for the next scheduling epoch.
        """
        dropped = 0
        if consume_pending:
            triggers = tuple(self._pending_triggers) + tuple(extra_triggers)
            self._pending_triggers = []
            dropped = self._dropped_triggers
            self._dropped_triggers = 0
        else:
            triggers = tuple(extra_triggers)
        plan.provenance = Provenance(
            policy=plan.policy,
            ts=self.now,
            triggers=triggers,
            inputs=plan.decision_inputs or {},
            span_id=plan.span_id,
            dropped_triggers=dropped,
        )

    # ------------------------------------------------------------------
    # the epoch pipeline
    # ------------------------------------------------------------------
    def admit_job(self, job: Job) -> None:
        """A job arrives: enqueue it and request a scheduling epoch.

        Drivers call this at the job's arrival time (the simulator from
        a trace-driven event, the daemon when a submit request lands).
        """
        if self.profiler is not None:
            # the scheduler sees the profiler's estimate, not the
            # oracle duration (§3: profiling happens at enqueue)
            job.estimate_error = self.profiler.estimate_error(job.spec)
        self.pending.append(job)
        if self.view is not None:
            self.view.note_queue_change()
        hour = int(self.now // 3600)
        self._hour_submissions[hour] = self._hour_submissions.get(hour, 0) + 1
        job._arrival_hour = hour  # noqa: SLF001 - kernel-private
        self.log(
            EventKind.SUBMIT, job.job_id,
            min_workers=job.spec.min_workers,
            max_workers=job.spec.max_workers,
            gpus_per_worker=job.spec.gpus_per_worker,
            elastic=job.spec.elastic,
        )
        self.note_trigger(TRIGGER_ARRIVAL, job_id=job.job_id)
        self.trigger_schedule()

    def trigger_schedule(self) -> None:
        """Request a scheduling epoch, coalescing rapid-fire triggers.

        This is where request batching happens in every driver: all
        triggers landing before the armed tick share one epoch, and
        epochs are never closer than ``config.scheduler_interval``.
        """
        if self._tick_pending:
            return
        self._tick_pending = True
        when = max(self.driver.now,
                   self._last_tick + self.config.scheduler_interval)
        self.driver.schedule(when, self._schedule_tick, tag=("tick",))

    def _schedule_tick(self) -> None:
        """One scheduling epoch: the decide → validate → commit pipeline."""
        self._tick_pending = False
        self._last_tick = self.now
        self.log(EventKind.SCHEDULE_EPOCH, detail=len(self.pending))
        with self.obs.phases.phase(PHASE_SCHEDULER_TICK):
            if self._can_skip_epoch():
                # No deltas since the last epoch and the policy is
                # epoch-idempotent: re-running would provably repeat the
                # same (non-)decisions.  The epoch is still logged and
                # the bookkeeping below still runs, so activity logs and
                # metrics are identical to the non-skipping path.
                self._epochs_skipped += 1
                self.metrics.registry.counter("sim.epochs_skipped").inc()
            else:
                plan = self.policy.plan(self)
                if self.tracer.enabled:
                    self._take_provenance(plan)
                self.executor.apply(plan)
                if self.view is not None:
                    self._last_epoch_version = self.view.version
        # First-attempt bookkeeping for the Fig. 2 queuing ratio.
        for job in self.pending:
            if job.job_id not in self._first_attempt_seen:
                self._first_attempt_seen.add(job.job_id)
                hour = getattr(job, "_arrival_hour", 0)
                self._hour_queued[hour] = self._hour_queued.get(hour, 0) + 1
        for job in list(self.running.values()):
            self._first_attempt_seen.add(job.job_id)
        self.driver.epoch_finished()

    run_epoch = _schedule_tick

    def _can_skip_epoch(self) -> bool:
        """Whether this epoch is provably a no-op.

        Requires an epoch-idempotent policy, an unchanged ClusterView
        version since the last executed epoch, and no active fault
        machinery (transient launch gates could make a retry succeed
        where the last epoch failed)."""
        return (
            self.view is not None
            and getattr(self.policy, "epoch_idempotent", False)
            and self._last_epoch_version is not None
            and self._last_epoch_version == self.view.version
            and self.fault_injector is None
            and not self.degraded_servers
        )

    def run_orchestrator_epoch(self) -> None:
        """One orchestrator epoch: loan/reclaim planning and commit.

        Drivers call this on their orchestrator cadence
        (``config.orchestrator_interval``); the kernel plans through the
        orchestrator and commits through the executor exactly as a
        scheduling epoch does.
        """
        assert self.orchestrator is not None
        plan = self.orchestrator.plan_tick(self)
        if self.tracer.enabled:
            inputs = plan.decision_inputs or {}
            extra = [Trigger(
                kind=TRIGGER_INTERVAL,
                ts=self.now,
                detail=(("interval_s", self.config.orchestrator_interval),),
            )]
            if inputs.get("forecast_capped"):
                extra.append(Trigger(TRIGGER_FORECAST, ts=self.now))
            if inputs.get("degraded"):
                extra.append(Trigger(
                    TRIGGER_FAULT,
                    ts=self.now,
                    detail=(("fault", "predictor_down"),),
                ))
            self._take_provenance(
                plan, extra_triggers=extra, consume_pending=False
            )
        self.executor.apply(plan)

    def placement_engine(self, opportunistic: bool = False) -> PlacementEngine:
        """The persistent, view-fed placement engine for this kernel.

        One engine per opportunistic flag lives for the whole run (the
        engine is stateless apart from configuration, so persistence is
        safe); its clock is refreshed on every call.
        """
        engine = self._engines.get(opportunistic)
        if engine is None:
            # In an active multi-cluster market the pair exposes a
            # region oracle and placement turns locality-aware; the
            # degenerate 1×1 market (and the plain pair) leaves it off,
            # keeping placement byte-identical to the single-pair path.
            region_of = (
                self.pair.region_of
                if getattr(self.pair, "market_active", False)
                else None
            )
            engine = PlacementEngine(
                self.cluster,
                special_elastic_grouping=self.config.special_elastic_grouping,
                opportunistic=opportunistic,
                rm=self.rm,
                view=self.view,
                region_of=region_of,
            )
            self._engines[opportunistic] = engine
        engine.now = self.now
        return engine

    # ------------------------------------------------------------------
    # policy-facing API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.driver.now

    @property
    def running_elastic(self) -> List[Job]:
        return [j for j in self.running.values() if j.elastic]

    @property
    def drained(self) -> bool:
        """True once no work remains and no more arrivals are due."""
        return (
            not self.pending
            and not self.running
            and self.now >= self._last_arrival
        )

    def activate(self, job: Job) -> None:
        """Start a job whose workers the policy just placed."""
        if job.total_workers < job.spec.min_workers:
            raise RuntimeError(
                f"job {job.job_id} activated with {job.total_workers} workers "
                f"< base demand {job.spec.min_workers}"
            )
        self.pending.remove(job)
        if self.view is not None:
            self.view.note_queue_change()
        job.mark_started(self.now)
        self._apply_tuning(job)
        if self.degraded_servers:
            job.straggler_penalty = self._straggler_penalty_for(job)
        restart_of = self._preempt_times.pop(job.job_id, None)
        if restart_of is not None:
            # time-to-recover: how long a preempted job waited to run again
            self.metrics.registry.histogram(
                "resilience.time_to_restart_s"
            ).observe(self.now - restart_of)
        self.running[job.job_id] = job
        if job.job_id not in self._started_once:
            self._started_once.add(job.job_id)
            self.metrics.registry.histogram("sim.queue_wait_s").observe(
                self.now - job.spec.submit_time
            )
        self.log(
            EventKind.START, job.job_id, detail=job.total_workers,
            workers=job.total_workers,
            queued_s=self.now - job.spec.submit_time,
            **self._start_trace_extras(job),
        )
        self._reschedule_completion(job)

    def _start_trace_extras(self, job: Job) -> Dict[str, object]:
        """Placement/loan context attached to traced ``job.start`` events
        (powers the per-job timeline); empty — and allocation-free — in
        untraced runs."""
        if not self.tracer.enabled:
            return {}
        gpu_types = set()
        for sid in job.servers:
            server = self.rm._server(sid)
            if server is not None:
                gpu_types.add(server.gpu_type.name)
        return {
            "servers": sorted(job.servers),
            "onloan": sorted(job._onloan_servers),
            "gpu_types": sorted(gpu_types),
        }

    def rescale(self, job: Job, scaled_out: bool) -> None:
        """Account a scale operation on a running job and re-time it."""
        job.advance(self.now)
        self._apply_tuning(job)
        if self.degraded_servers:
            job.straggler_penalty = self._straggler_penalty_for(job)
        job.scale_ops += 1
        self.metrics.scale_ops += 1
        kind = EventKind.SCALE_OUT if scaled_out else EventKind.SCALE_IN
        self.log(kind, job.job_id, detail=job.total_workers,
                 workers=job.total_workers)
        self._reschedule_completion(job)

    # -- plan-commit primitives (called by PlanExecutor only) ----------
    def _commit_start(
        self, job: Job, workers: int, queued_s: float, eta: float
    ) -> None:
        """Commit a staged :class:`~repro.core.actions.Launch`.

        The job's resource-side start (placement, mark_started, tuning)
        already happened inside the plan transaction; this performs the
        deferred lifecycle half of :meth:`activate` with the payloads
        snapshotted at decision time, so logs and completion timing are
        byte-identical to the imperative path.
        """
        self.pending.remove(job)
        if self.view is not None:
            self.view.note_queue_change()
        restart_of = self._preempt_times.pop(job.job_id, None)
        if restart_of is not None:
            # time-to-recover: how long a preempted job waited to run again
            self.metrics.registry.histogram(
                "resilience.time_to_restart_s"
            ).observe(self.now - restart_of)
        self.running[job.job_id] = job
        if job.job_id not in self._started_once:
            self._started_once.add(job.job_id)
            self.metrics.registry.histogram("sim.queue_wait_s").observe(
                queued_s
            )
        self.log(
            EventKind.START, job.job_id, detail=workers,
            workers=workers, queued_s=queued_s,
            **self._start_trace_extras(job),
        )
        self._schedule_completion_at(job, eta)

    def _commit_rescale(
        self, job: Job, scaled_out: bool, workers: int, eta: float
    ) -> None:
        """Commit a staged ScaleOut/ScaleIn: the lifecycle half of
        :meth:`rescale`, with decision-time payload snapshots."""
        job.scale_ops += 1
        self.metrics.scale_ops += 1
        kind = EventKind.SCALE_OUT if scaled_out else EventKind.SCALE_IN
        self.log(kind, job.job_id, detail=workers, workers=workers)
        self._schedule_completion_at(job, eta)

    def _apply_tuning(self, job: Job) -> None:
        """Lyra+TunedJobs: retune batch size/LR on every allocation change.

        Tuning restores near-perfect scaling and yields a small goodput
        bonus whenever the job runs above base demand (§7.4)."""
        if not self.config.tuned_jobs or not job.elastic:
            return
        if job.total_workers > job.spec.min_workers:
            job.hetero_penalty = _TUNING_BONUS
        else:
            job.hetero_penalty = 1.0

    def _reschedule_completion(self, job: Job) -> None:
        self._schedule_completion_at(job, job.eta())

    def _schedule_completion_at(self, job: Job, eta: float) -> None:
        """(Re-)arm the job's completion at ``now + eta``.

        ``eta`` may be a plan-time snapshot: committing every staged
        action's recorded eta in order reproduces the legacy sequence of
        heap insertions exactly, including ones superseded later in the
        same epoch (heap identity drives heartbeat skip-ahead timing).
        """
        epoch = self._completion_epoch.get(job.job_id, 0) + 1
        self._completion_epoch[job.job_id] = epoch
        if math.isinf(eta):
            return
        self.driver.schedule(
            self.now + eta, self._completion(job, epoch),
            tag=("completion", job.job_id, epoch),
        )

    def _completion(self, job: Job, epoch: int):
        def handler() -> None:
            if self._completion_epoch.get(job.job_id) != epoch:
                return  # stale event from a superseded allocation
            if job.status is not JobStatus.RUNNING:
                return
            job.advance(self.now)
            if job.remaining_work > _WORK_EPS * job.spec.total_work:
                self._reschedule_completion(job)
                return
            self.rm.release_job(job, now=self.now)
            job.mark_finished(self.now)
            del self.running[job.job_id]
            if self.profiler is not None:
                self.profiler.observe(job.spec, job.spec.duration)
            self.metrics.registry.histogram("sim.jct_s").observe(job.jct)
            self.log(EventKind.FINISH, job.job_id, jct_s=job.jct)
            logger.debug("job %d finished at %.0f (jct %.0f s)",
                         job.job_id, self.now, job.jct)
            self.note_trigger(TRIGGER_COMPLETION, job_id=job.job_id)
            self.trigger_schedule()

        return handler

    def preempt(self, job: Job, cause: str = "scheduler") -> None:
        """Preempt a running job (reclaiming made it inevitable, §4)."""
        if job.job_id not in self.running:
            raise RuntimeError(f"job {job.job_id} is not running")
        job.advance(self.now)  # bank progress before containers die
        workers = job.total_workers
        # resilience accounting: GPU-seconds this preemption destroys —
        # all banked progress unless checkpointing, plus the §7.5
        # checkpoint/restart overhead either way
        lost_work = self.config.preemption_overhead * (
            job.spec.max_workers * job.spec.gpus_per_worker
        )
        if not job.spec.checkpointing:
            lost_work += job.spec.total_work - job.remaining_work
        self.metrics.registry.histogram(
            "resilience.lost_gpu_hours", cause=cause
        ).observe(lost_work / 3600.0)
        self.metrics.registry.counter(
            "sim.preemptions_by_cause", cause=cause
        ).inc()
        self._preempt_times[job.job_id] = self.now
        self.rm.release_job(job, now=self.now)
        job.mark_preempted(self.now, overhead=self.config.preemption_overhead)
        del self.running[job.job_id]
        self._completion_epoch[job.job_id] = (
            self._completion_epoch.get(job.job_id, 0) + 1
        )
        self.pending.append(job)
        if self.view is not None:
            self.view.note_queue_change()
        self.metrics.preemptions += 1
        self.log(EventKind.PREEMPT, job.job_id, cause=cause, workers=workers)
        logger.debug("job %d preempted at %.0f (cause=%s)",
                     job.job_id, self.now, cause)
        self.note_trigger(TRIGGER_PREEMPT, job_id=job.job_id, cause=cause)
        self.trigger_schedule()

    def cancel_job(self, job_id: int, cause: str = "user") -> bool:
        """Cancel a job on user request (the daemon's ``cancel`` op).

        A pending job silently leaves the queue; a running job is
        released first (its containers stop, progress is discarded).
        Returns False when the job is unknown or already finished —
        cancellation is idempotent, never an error.  Cancelled jobs are
        excluded from future epochs because they are in neither queue;
        their ``finish_time`` stays None so JCT metrics ignore them.
        """
        job = self.jobs.get(job_id)
        if job is None or job.status is JobStatus.FINISHED:
            return False
        cancelled = False
        if job_id in self.running:
            job.advance(self.now)
            self.rm.release_job(job, now=self.now)
            del self.running[job_id]
            self._completion_epoch[job_id] = (
                self._completion_epoch.get(job_id, 0) + 1
            )
            job.status = JobStatus.PENDING
            cancelled = True
        if job in self.pending:
            self.pending.remove(job)
            cancelled = True
        if not cancelled:
            return False
        if self.view is not None:
            self.view.note_queue_change()
        del self.jobs[job_id]
        self.metrics.registry.counter(
            "sim.cancellations", cause=cause
        ).inc()
        self.trace("job.cancel", job_id=job_id, cause=cause)
        self.trigger_schedule()
        return True

    def scale_in_worker_counts(self, job: Job, server_workers: Dict[str, int]):
        """Remove specific flexible workers of a running job."""
        job.advance(self.now)
        for server_id, workers in server_workers.items():
            self.rm.scale_in(job, server_id, workers, now=self.now)
        self.rescale(job, scaled_out=False)

    # ------------------------------------------------------------------
    # failure injection (driven by repro.faults.injector.FaultInjector)
    # ------------------------------------------------------------------
    def record_failure_noop(
        self, reason: str, server_id: Optional[str] = None
    ) -> None:
        """A fault event landed on nothing; record it, never skip it
        silently (an outage of an empty rack is still an outage)."""
        self.metrics.registry.counter(
            "resilience.node_failure_noop", reason=reason
        ).inc()
        self.trace(
            "fault.node_failure_noop", reason=reason, server_id=server_id
        )
        logger.debug("node failure no-op at %.0f (%s, server=%s)",
                     self.now, reason, server_id)

    def apply_node_failure(
        self,
        server_id: str,
        repair_time: Optional[float] = None,
        cause: str = "node_failure",
    ) -> bool:
        """One server dies (§6 monitors server status; the paper's
        clusters see real node failures).

        Jobs that lost base workers restart from the queue (gang
        semantics); jobs that only lost flexible workers shrink and
        continue.  Returns True when the failure landed; a failure
        targeting an unknown or already-unhealthy server is a recorded
        no-op returning False.  ``repair_time`` schedules the matching
        recovery (None leaves the node down for the rest of the run).
        """
        if server_id not in self.cluster and server_id not in self.pair.inference:
            self.record_failure_noop("unknown_server", server_id)
            return False
        if not self.rm.is_healthy(server_id):
            self.record_failure_noop("already_unhealthy", server_id)
            return False
        report = self.rm.fail_node(server_id, now=self.now)
        if self.view is not None:
            # node health lives in the RM, not the GPU books — force
            # consumers (placement health filter) to revisit
            self.view.bump()
        self.metrics.node_failures += 1
        self._fail_times[server_id] = self.now
        self.trace(
            "cluster.node_failure", server_id=server_id,
            jobs_lost_base=sorted(report.jobs_lost_base),
            jobs_lost_flex=sorted(report.jobs_lost_flex),
        )
        logger.info("node %s failed at %.0f (%d base jobs lost)",
                    server_id, self.now, len(report.jobs_lost_base))
        # jobs that lost base workers restart from the queue
        for job_id in sorted(report.jobs_lost_base):
            if job_id in self.running:
                self.preempt(self.jobs[job_id], cause=cause)
        # jobs that only lost flexible workers shrink and continue
        for job_id in sorted(report.jobs_lost_flex):
            workers = report.jobs_lost_flex[job_id]
            job = self.jobs[job_id]
            if job_id not in self.running:
                continue
            job.advance(self.now)  # progress up to the failure instant
            remaining = workers
            for sid in list(job.flex_placement):
                if sid != server_id:
                    continue
                have = job.flex_placement[sid]
                take = min(have, remaining)
                job.flex_placement[sid] = have - take
                if job.flex_placement[sid] == 0:
                    job.remove_flex_on(sid)
                remaining -= take
            self.rescale(job, scaled_out=False)
        if repair_time is not None:
            self.driver.schedule_after(
                repair_time,
                lambda sid=server_id: self._node_recovery(sid),
                tag=("node_recovery", server_id),
            )
        self.note_trigger(
            TRIGGER_NODE_FAILURE, server_id=server_id, cause=cause
        )
        self.trigger_schedule()
        return True

    def _node_recovery(self, server_id: str) -> None:
        self.rm.recover_node(server_id, now=self.now)
        if self.view is not None:
            self.view.bump()
        failed_at = self._fail_times.pop(server_id, None)
        if failed_at is not None:
            self.metrics.registry.histogram(
                "resilience.node_downtime_s"
            ).observe(self.now - failed_at)
        self.trace("cluster.node_recovery", server_id=server_id)
        self.note_trigger(TRIGGER_NODE_RECOVERY, server_id=server_id)
        self.trigger_schedule()

    # ------------------------------------------------------------------
    # straggler degradation (driven by the fault injector)
    # ------------------------------------------------------------------
    def set_server_degradation(
        self, server_id: str, factor: Optional[float] = None
    ) -> None:
        """Mark a server as straggling at ``factor`` of nominal
        throughput (None restores full speed) and re-time every running
        job it hosts."""
        server = self.rm._server(server_id)
        if factor is None:
            self.degraded_servers.pop(server_id, None)
            if server is not None:
                server.perf_factor = 1.0
        else:
            self.degraded_servers[server_id] = factor
            if server is not None:
                server.perf_factor = factor
        if self.view is not None:
            # perf_factor feeds the placement sort order; mirroring
            # backends refresh their column from the updated server
            if server is not None:
                self.view.note_server_attrs(server)
            else:
                self.view.bump()
        for job in list(self.running.values()):
            if server_id in job.servers:
                job.advance(self.now)
                job.straggler_penalty = self._straggler_penalty_for(job)
                self._reschedule_completion(job)

    def _straggler_penalty_for(self, job: Job) -> float:
        """Synchronous training paces at its slowest worker: the penalty
        is the worst factor among the job's host servers."""
        if not self.degraded_servers:
            return 1.0
        return min(
            (self.degraded_servers.get(sid, 1.0) for sid in job.servers),
            default=1.0,
        )

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def _finalize_hourly_ratio(self) -> None:
        ratios = []
        for hour in sorted(self._hour_submissions):
            submitted = self._hour_submissions[hour]
            queued = self._hour_queued.get(hour, 0)
            ratios.append(queued / submitted if submitted else 0.0)
        self.metrics.hourly_queuing_ratio = ratios

    # ------------------------------------------------------------------
    # Driver default: a bare kernel with no driver is an error loudly
    # ------------------------------------------------------------------
    def epoch_finished(self) -> None:  # pragma: no cover - overridden
        """Driver hook: called after every epoch.  Subclass drivers
        override (the simulator stops a drained run here; the daemon
        wakes waiters).  A composed kernel's driver receives the call
        instead."""
        pass
