"""Decision plans: declarative scheduling actions and their executor.

Splits *deciding* from *doing* at the policy→cluster boundary.  Policies
no longer mutate the simulation mid-``schedule()``; instead each epoch
produces an :class:`EpochPlan` — an ordered list of immutable action
records (:class:`Launch`, :class:`Preempt`, :class:`ScaleOut`,
:class:`ScaleIn`, :class:`LoanServers`, :class:`ReclaimServers`,
:class:`MigrateJob`) — and the simulation applies it through a single
commit point, the :class:`PlanExecutor`.  That is the interface
decision-driven schedulers (DL2, Aryl) put between policy and cluster,
and it is what Lyra's own evaluation needs to cost and compare decisions
across policies (§7): a plan can be inspected, priced (``dry_run=True``),
rejected atomically, or replayed, none of which an imperative scheduler
allows.

Two families of actions coexist:

* **Staged** actions come out of a :class:`PlanTransaction` — the façade
  a policy's ``decide()`` runs against.  Placement is capacity-shaped
  (which worker fits where depends on every earlier placement in the
  epoch), so resource/book mutations happen eagerly at plan time exactly
  as the legacy algorithms made them, journaled with exact inverse
  operations; the *lifecycle* effects (queue membership, activity log,
  metrics, completion events) are recorded as actions and deferred to
  commit.  Rolling back the journal restores the pre-plan cluster state
  bit-for-bit, which is what makes ``dry_run`` and all-or-nothing
  rejection possible.
* **Declarative** actions (:class:`LoanServers`, :class:`ReclaimServers`,
  :class:`MigrateJob`) describe whitelist moves the orchestrator computed
  purely; nothing is staged and the executor performs the whole effect at
  commit.

The executor validates every action against the live cluster/view state
before committing anything (the activity log cannot be unwritten, so
atomicity means validate-all-then-commit), emits per-action trace events
through ``repro.obs`` as the legacy lifecycle events plus a
``scheduler.plan`` summary, and feeds deltas to the incremental
:class:`~repro.core.view.ClusterView` through the same ``Server``
change hooks the staged mutations already fire.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.job import Job
from repro.elastic.controller import ElasticControllerError, check_scale_floor
from repro.obs import get_logger
from repro.obs.profiling import (
    NULL_PROFILER,
    PHASE_PLAN_COMMIT,
    PHASE_PLAN_VALIDATE,
)
from repro.obs.provenance import (
    PROVENANCE_EVENT,
    TRIGGER_LOAN,
    TRIGGER_RECLAIM,
    Provenance,
    action_digest,
)
from repro.obs.tracer import CAT_PLAN
from repro.rm.containers import Container, ContainerState
from repro.simulator.events import EventKind

logger = get_logger("actions")


class PlanError(RuntimeError):
    """A decision plan was malformed or misused (e.g. applied twice)."""


class PlanRejected(PlanError):
    """Validation against the live cluster state failed; nothing was
    committed and any staged effects were rolled back."""


# ----------------------------------------------------------------------
# action records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Launch:
    """Start a pending job on the workers staged for it at plan time.

    ``eta`` and ``queued_s`` are snapshots taken when the decision was
    made; commit replays them verbatim so completion-event timing (and
    therefore the activity log) is byte-identical to the imperative path.
    """

    job_id: int
    workers: int
    gpus: int
    queued_s: float
    eta: float

    kind = "launch"


@dataclass(frozen=True)
class ScaleOut:
    """Grow a running elastic job to ``workers`` (staged at plan time)."""

    job_id: int
    workers: int
    delta: int
    eta: float

    kind = "scale_out"


@dataclass(frozen=True)
class ScaleIn:
    """Shrink an elastic job.

    ``staged=True`` records a shrink the transaction already applied to
    the books (scheduler-driven); ``staged=False`` is declarative — the
    executor removes ``removals`` (``(server_id, workers)`` pairs) at
    commit, as reclaim plans demand (§4/§5.3).
    """

    job_id: int
    removals: Tuple[Tuple[str, int], ...]
    workers: int
    delta: int
    eta: float
    staged: bool = True

    kind = "scale_in"


@dataclass(frozen=True)
class Preempt:
    """Stop a running job and return it to the queue (§4)."""

    job_id: int
    cause: str = "scheduler"

    kind = "preempt"


@dataclass(frozen=True)
class LoanServers:
    """Move the named idle inference servers into the training whitelist
    (§6).  Ids are pre-picked so the commit is deterministic.

    In a multi-cluster capacity market ``lender`` names the member
    cluster the servers come from and ``borrower`` the training region
    the loan is matched to (contracts open against it); both stay None
    on the single-pair path.
    """

    server_ids: Tuple[str, ...]
    requested: int
    lender: Optional[str] = None
    borrower: Optional[str] = None

    kind = "loan_servers"


@dataclass(frozen=True)
class ReclaimServers:
    """Return on-loan servers to the inference whitelist (§4).

    ``route_around=True`` marks the fault-recovery fast path: the listed
    servers are vacant but unhealthy/straggling and are returned without
    a reclaim plan (``health`` carries ``(server_id, unhealthy,
    straggling)`` per server).  Otherwise the fields snapshot the reclaim
    planner's outcome — demand, per-server preemption ``costs`` (Table 1
    metric), collateral GPUs, free servers — so commit can reproduce the
    legacy metrics and RECLAIM log exactly.
    """

    server_ids: Tuple[str, ...]
    demand: int
    route_around: bool = False
    health: Tuple[Tuple[str, bool, bool], ...] = ()
    preempted: Tuple[int, ...] = ()
    scaled_in: Tuple[int, ...] = ()
    free_servers: int = 0
    collateral_gpus: int = 0
    costs: Optional[Tuple[Tuple[str, float], ...]] = None
    record_metrics: bool = True
    #: member cluster being repaid (market recalls are per lender);
    #: None on the single-pair path
    lender: Optional[str] = None

    kind = "reclaim_servers"


@dataclass(frozen=True)
class MigrateJob:
    """Move every worker of a job from ``source`` to ``target`` without
    preempting it (defragmentation / vacating a server)."""

    job_id: int
    source: str
    target: str

    kind = "migrate_job"


Action = Any  # union of the dataclasses above; kept loose for py39

#: staged job-lifecycle actions, in the vocabulary order of the issue
STAGED_KINDS = ("launch", "scale_out", "scale_in")


def _jsonable(value: Any) -> Any:
    if isinstance(value, float) and math.isinf(value):
        return None
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


@dataclass
class EpochPlan:
    """One epoch's decisions, in commit order.

    Single-use: applying (or dry-running) a plan consumes it, because a
    staged plan's journal can only be rolled back or committed once.
    """

    now: float
    policy: str
    actions: Tuple[Action, ...] = ()
    consumed: bool = field(default=False, compare=False)
    txn: Optional["PlanTransaction"] = field(default=None, repr=False, compare=False)
    #: id of the ``obs.span`` that produced this plan (traced runs only)
    span_id: Optional[int] = field(default=None, compare=False)
    #: decision inputs noted by the policy via ``txn.note_provenance()``
    decision_inputs: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False
    )
    #: full causal record, attached by the simulation before apply()
    provenance: Optional[Provenance] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.actions)

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for action in self.actions:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view of the plan (the ``--explain`` schema)."""
        return {
            "now": self.now,
            "policy": self.policy,
            "by_kind": self.by_kind(),
            "actions": [
                dict(kind=a.kind, **_jsonable(dataclasses.asdict(a)))
                for a in self.actions
            ],
        }


# ----------------------------------------------------------------------
# plan transaction: the façade policies decide against
# ----------------------------------------------------------------------
class PlanTransaction:
    """Simulation façade that stages an epoch's decisions.

    Reads delegate to the live simulation, with the queue/running
    overlays a mid-epoch policy expects (a job launched earlier in the
    epoch is no longer pending and is already running).  The three
    legacy mutation entry points — :meth:`activate`, :meth:`rescale`,
    :meth:`scale_in_worker_counts` — apply the resource-side effects
    exactly as the imperative scheduler did (so later placement decisions
    see the true capacity) while journaling inverse operations and
    recording the lifecycle effect as an action for commit.

    The transaction also installs itself as the resource manager's
    ``journal`` so container launches/stops made by the placement engine
    are captured, including job-placement pre-images.
    """

    def __init__(self, sim, policy: str):
        rm = sim.rm
        if getattr(rm, "journal", None) is not None:
            raise PlanError(
                "a plan transaction is already open on this simulation; "
                "seal or abort it before starting another"
            )
        self._sim = sim
        self._policy = policy
        self._actions: List[Action] = []
        self._launched: List[Job] = []
        self._launched_ids: Set[int] = set()
        #: journal of invertible resource mutations, in application order
        self._entries: List[tuple] = []
        #: per-job pre-images, captured on first touch
        self._job_pre: Dict[int, Dict[str, Any]] = {}
        #: worker totals as of the job's last recorded action (for deltas)
        self._last_total: Dict[int, int] = {}
        self._audit_len = len(rm.audit)
        #: decision inputs for the provenance ledger (traced runs only)
        self._prov_inputs: Optional[Dict[str, Any]] = None
        self._open = True
        rm.journal = self

    # -- reads -----------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        return getattr(self._sim, name)

    @property
    def sim(self):
        """The underlying simulation (read-only escape hatch)."""
        return self._sim

    @property
    def pending(self) -> List[Job]:
        if not self._launched_ids:
            return self._sim.pending
        return [j for j in self._sim.pending if j.job_id not in self._launched_ids]

    @property
    def running(self) -> Dict[int, Job]:
        if not self._launched:
            return self._sim.running
        merged = dict(self._sim.running)
        for job in self._launched:
            merged[job.job_id] = job
        return merged

    @property
    def running_elastic(self) -> List[Job]:
        return [j for j in self.running.values() if j.elastic]

    # -- journal hooks (called by ResourceManager / PlacementEngine) -----
    def note_job(self, job: Job) -> None:
        """Capture the job's pre-image before its first mutation."""
        jid = job.job_id
        if jid in self._job_pre:
            return
        self._job_pre[jid] = {
            "job": job,
            "status": job.status,
            "remaining_work": job.remaining_work,
            "last_progress_time": job.last_progress_time,
            "first_start_time": job.first_start_time,
            "finish_time": job.finish_time,
            "preemptions": job.preemptions,
            "scale_ops": job.scale_ops,
            "hetero_penalty": job.hetero_penalty,
            "tuning_bonus": job.tuning_bonus,
            "straggler_penalty": job.straggler_penalty,
            "onloan_work": job.onloan_work,
            "base_placement": dict(job.base_placement),
            "flex_placement": dict(job.flex_placement),
            "server_cost": dict(job._server_cost),
            "onloan_servers": set(job._onloan_servers),
        }
        self._last_total.setdefault(jid, job.total_workers)

    def record_launch(self, job: Job, server, containers: List[Container]) -> None:
        self._entries.append(("launch", job, server, list(containers)))

    def record_stopped(self, job_id: int, pairs: List[tuple]) -> None:
        """``pairs``: ``(server_or_None, container)`` stopped this txn."""
        self._entries.append(("stopped", job_id, list(pairs)))

    def record_group(self, server) -> None:
        """Journal a server's group before placement reassigns it."""
        self._entries.append(("group", server, server.group))

    # -- staged mutations (the legacy policy-facing API) -----------------
    def activate(self, job: Job) -> None:
        """Stage the start of a job whose workers were just placed."""
        if job.total_workers < job.spec.min_workers:
            raise RuntimeError(
                f"job {job.job_id} activated with {job.total_workers} workers "
                f"< base demand {job.spec.min_workers}"
            )
        self.note_job(job)
        job.mark_started(self._sim.now)
        self._sim._apply_tuning(job)
        if self._sim.degraded_servers:
            job.straggler_penalty = self._sim._straggler_penalty_for(job)
        self._launched.append(job)
        self._launched_ids.add(job.job_id)
        self._last_total[job.job_id] = job.total_workers
        self._actions.append(
            Launch(
                job_id=job.job_id,
                workers=job.total_workers,
                gpus=sum(job.gpus_on(sid) for sid in job.servers),
                queued_s=self._sim.now - job.spec.submit_time,
                eta=job.eta(),
            )
        )

    def rescale(self, job: Job, scaled_out: bool) -> None:
        """Stage a scale operation on a (possibly just-launched) job."""
        self.note_job(job)
        job.advance(self._sim.now)
        self._record_rescale(job, scaled_out)

    def scale_in_worker_counts(self, job: Job, server_workers: Dict[str, int]) -> None:
        """Stage the removal of specific flexible workers."""
        self.note_job(job)
        job.advance(self._sim.now)
        for server_id, workers in server_workers.items():
            self._sim.rm.scale_in(job, server_id, workers, now=self._sim.now)
        job.advance(self._sim.now)  # legacy rescale() advanced again (dt=0)
        self._record_rescale(
            job,
            scaled_out=False,
            removals=tuple(server_workers.items()),
        )

    def _record_rescale(
        self,
        job: Job,
        scaled_out: bool,
        removals: Tuple[Tuple[str, int], ...] = (),
    ) -> None:
        self._sim._apply_tuning(job)
        if self._sim.degraded_servers:
            job.straggler_penalty = self._sim._straggler_penalty_for(job)
        total = job.total_workers
        prev = self._last_total.get(job.job_id, total)
        self._last_total[job.job_id] = total
        eta = job.eta()
        if scaled_out:
            self._actions.append(
                ScaleOut(job_id=job.job_id, workers=total, delta=total - prev, eta=eta)
            )
        else:
            self._actions.append(
                ScaleIn(job_id=job.job_id, removals=removals, workers=total,
                        delta=prev - total, eta=eta, staged=True)
            )

    def note_provenance(self, **inputs: Any) -> None:
        """Record the decision-relevant state the policy saw this epoch
        (MCKP admitted/value, pool sizes, ...) for the provenance ledger.

        Policies should guard the call with ``ctx.tracer.enabled`` so
        untraced runs never build the dict; noting twice merges.
        """
        if self._prov_inputs is None:
            self._prov_inputs = {}
        self._prov_inputs.update(inputs)

    # -- lifecycle -------------------------------------------------------
    def seal(self) -> EpochPlan:
        """Detach from the RM and package the staged epoch as a plan."""
        self._detach()
        plan = EpochPlan(
            now=self._sim.now,
            policy=self._policy,
            actions=tuple(self._actions),
        )
        plan.txn = self
        plan.decision_inputs = self._prov_inputs
        return plan

    def abort(self) -> None:
        """Roll back everything staged so far (used on decide() errors)."""
        if self._open:
            self.rollback()

    def close(self) -> None:
        """Discard the journal after a successful commit."""
        self._detach()
        self._open = False
        self._entries.clear()
        self._job_pre.clear()

    def _detach(self) -> None:
        if self._sim.rm.journal is self:
            self._sim.rm.journal = None

    def rollback(self) -> None:
        """Undo every staged resource mutation, newest first.

        Containers are removed/revived and server books adjusted
        directly — never through ``rm.launch`` — so the fault-injection
        launch gate (and its RNG stream) is not consumed twice.  Job
        pre-images are restored last, absolutely.  The incremental view
        stays consistent because the inverse book operations fire the
        same ``Server`` change hooks as the forward ones.
        """
        if not self._open:
            raise PlanError("transaction already closed")
        self._detach()
        self._open = False
        rm = self._sim.rm
        for entry in reversed(self._entries):
            tag = entry[0]
            if tag == "launch":
                _, job, server, containers = entry
                total = 0
                for container in containers:
                    total += container.gpus
                    del rm._containers[container.container_id]
                    rm._by_job[job.job_id].remove(container.container_id)
                    rm._by_server[server.server_id].remove(container.container_id)
                server.release(job.job_id, total)
            elif tag == "stopped":
                _, job_id, pairs = entry
                for server, container in pairs:
                    container.state = ContainerState.RUNNING
                    container.end_time = None
                    if server is not None:
                        server.allocate(job_id, container.gpus)
            elif tag == "group":
                _, server, previous = entry
                server.group = previous
                view = getattr(self._sim, "view", None)
                if view is not None:
                    # mirroring backends track group state in columns
                    view.note_group_change(server)
        for pre in self._job_pre.values():
            job = pre["job"]
            job.status = pre["status"]
            job.remaining_work = pre["remaining_work"]
            job.last_progress_time = pre["last_progress_time"]
            job.first_start_time = pre["first_start_time"]
            job.finish_time = pre["finish_time"]
            job.preemptions = pre["preemptions"]
            job.scale_ops = pre["scale_ops"]
            job.hetero_penalty = pre["hetero_penalty"]
            job.tuning_bonus = pre["tuning_bonus"]
            job.straggler_penalty = pre["straggler_penalty"]
            job.onloan_work = pre["onloan_work"]
            job.base_placement.clear()
            job.base_placement.update(pre["base_placement"])
            job.flex_placement.clear()
            job.flex_placement.update(pre["flex_placement"])
            job._server_cost.clear()
            job._server_cost.update(pre["server_cost"])
            job._onloan_servers.clear()
            job._onloan_servers.update(pre["onloan_servers"])
        del rm.audit[self._audit_len:]
        self._entries.clear()
        self._job_pre.clear()


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
@dataclass
class PlanReceipt:
    """Outcome of :meth:`PlanExecutor.apply`."""

    applied: bool
    actions: int
    pricing: Optional[Dict[str, Any]] = None


class PlanExecutor:
    """Validates and atomically applies :class:`EpochPlan`\\ s.

    The single commit point between decisions and the cluster: all
    lifecycle mutations (queue membership, activity/trace events,
    metrics, completion scheduling, whitelist moves) happen here, in
    plan-action order.  ``dry_run=True`` prices a plan — preemption
    cost, GPUs moved, jobs affected — and rolls back any staged effects
    instead of committing, leaving the simulation untouched.
    """

    def __init__(self, sim):
        self.sim = sim
        self.plans_applied = 0
        self.plans_rejected = 0
        self.actions_applied = 0
        #: True only while a commit is mid-flight; fault audits assert
        #: this is never observable from an event handler
        self.in_flight = False
        #: write-ahead plan journal (:class:`repro.recovery.wal.PlanWAL`);
        #: None — the default — skips all journaling at one attribute
        #: check per applied plan
        self.wal = None
        #: crash-barrier probe (:class:`repro.faults.crash.CrashInjector`),
        #: called with the barrier name at the commit-path kill points
        self.crash_probe = None

    # -- entry point -----------------------------------------------------
    def apply(self, plan: EpochPlan, dry_run: bool = False) -> PlanReceipt:
        if plan.consumed:
            raise PlanError(
                "plan already consumed; plans are single-use — build a "
                "fresh one via policy.plan(sim)"
            )
        plan.consumed = True
        txn = plan.txn
        sim = self.sim
        record = getattr(sim.config, "record_plans", False)
        want_pricing = dry_run or record or sim.tracer.enabled
        pricing = self.price(plan) if want_pricing else None
        if dry_run:
            if txn is not None:
                txn.rollback()
            return PlanReceipt(applied=False, actions=len(plan.actions), pricing=pricing)
        obs = getattr(sim, "obs", None)
        phases = obs.phases if obs is not None else NULL_PROFILER
        try:
            with phases.phase(PHASE_PLAN_VALIDATE):
                self._validate(plan)
        except PlanError:
            self.plans_rejected += 1
            if txn is not None:
                txn.rollback()
            raise
        # Write-ahead journaling: the plan is durable *before* any of its
        # effects land, so a crash between here and the next snapshot is
        # recoverable (and the resumed run's re-derived plan is verified
        # against this entry instead of being double-committed).
        if self.wal is not None and plan.actions:
            self.wal.append(self.plans_applied + 1, plan)
            if self.crash_probe is not None:
                self.crash_probe("post_wal")
        self.in_flight = True
        try:
            with phases.phase(PHASE_PLAN_COMMIT):
                for i, action in enumerate(plan.actions):
                    self._commit(action)
                    self.actions_applied += 1
                    if i == 0 and self.crash_probe is not None:
                        # the harshest kill point: one action of a
                        # multi-action plan has already mutated state
                        self.crash_probe("mid_epoch")
        finally:
            self.in_flight = False
        if txn is not None:
            txn.close()
        self.plans_applied += 1
        if plan.actions:
            if record:
                entry = plan.to_dict()
                entry["pricing"] = pricing
                sim.plan_log.append(entry)
            if sim.tracer.enabled:
                sim.tracer.emit(
                    "scheduler.plan",
                    ts=sim.now,
                    cat=CAT_PLAN,
                    policy=plan.policy,
                    plan_id=self.plans_applied,
                    actions=len(plan.actions),
                    by_kind=plan.by_kind(),
                    jobs_affected=pricing["jobs_affected"],
                    preemptions=pricing["preemptions"],
                    gpus_moved=pricing["gpus_moved"],
                )
                self._emit_provenance(plan, pricing)
        return PlanReceipt(applied=True, actions=len(plan.actions), pricing=pricing)

    def _emit_provenance(self, plan: EpochPlan, pricing: Dict[str, Any]) -> None:
        """Emit the plan's causal record (the ``plan.provenance`` event).

        The simulation attaches a full :class:`Provenance` (triggers +
        inputs + span) before calling :meth:`apply`; plans applied
        outside that loop (tests, what-if replays) still get a minimal
        record so the ledger never has holes.
        """
        sim = self.sim
        prov = plan.provenance
        if prov is None:
            prov = Provenance(
                policy=plan.policy,
                ts=plan.now,
                inputs=plan.decision_inputs or {},
                span_id=plan.span_id,
            )
        sim.tracer.emit(
            PROVENANCE_EVENT,
            ts=sim.now,
            cat=CAT_PLAN,
            plan_id=self.plans_applied,
            pricing=pricing,
            actions=[action_digest(a) for a in plan.actions],
            **prov.to_payload(),
        )

    # -- pricing ---------------------------------------------------------
    def price(self, plan: EpochPlan) -> Dict[str, Any]:
        """What applying the plan would move/destroy (the what-if view)."""
        sim = self.sim
        jobs_affected: Set[int] = set()
        gpus_moved = 0
        preemptions = 0
        preemption_cost = 0.0
        lost_gpu_s = 0.0
        servers_loaned = 0
        servers_reclaimed = 0
        for action in plan.actions:
            kind = action.kind
            if kind == "launch":
                jobs_affected.add(action.job_id)
                gpus_moved += action.gpus
            elif kind in ("scale_out", "scale_in"):
                jobs_affected.add(action.job_id)
                job = sim.jobs.get(action.job_id)
                per_worker = job.spec.gpus_per_worker if job else 1
                if kind == "scale_in" and not action.staged:
                    delta = sum(w for _, w in action.removals)
                else:
                    delta = abs(action.delta)
                gpus_moved += delta * per_worker
            elif kind == "preempt":
                jobs_affected.add(action.job_id)
                preemptions += 1
                job = sim.jobs.get(action.job_id)
                if job is not None:
                    lost = sim.config.preemption_overhead * (
                        job.spec.max_workers * job.spec.gpus_per_worker
                    )
                    if not job.spec.checkpointing:
                        lost += job.spec.total_work - job.remaining_work
                    lost_gpu_s += lost
                    gpus_moved += sum(job.gpus_on(sid) for sid in job.servers)
            elif kind == "loan_servers":
                servers_loaned += len(action.server_ids)
            elif kind == "reclaim_servers":
                servers_reclaimed += len(action.server_ids)
                if action.costs:
                    preemption_cost += sum(c for _, c in action.costs)
            elif kind == "migrate_job":
                jobs_affected.add(action.job_id)
                job = sim.jobs.get(action.job_id)
                if job is not None:
                    gpus_moved += job.gpus_on(action.source)
        return {
            "actions": len(plan.actions),
            "by_kind": plan.by_kind(),
            "jobs_affected": len(jobs_affected),
            "preemptions": preemptions,
            "preemption_cost": round(preemption_cost, 4),
            "lost_gpu_hours": round(lost_gpu_s / 3600.0, 4),
            "gpus_moved": gpus_moved,
            "servers_loaned": servers_loaned,
            "servers_reclaimed": servers_reclaimed,
        }

    # -- validation ------------------------------------------------------
    def _validate(self, plan: EpochPlan) -> None:
        """Check every action against live state before committing any.

        The activity log cannot be unwritten, so atomicity is
        validate-all-then-commit: a single bad action rejects the whole
        plan (rolling back its staged effects) and nothing is logged.
        """
        sim = self.sim
        pending_ids = {j.job_id for j in sim.pending}
        will_run: Set[int] = set(sim.running)
        for action in plan.actions:
            kind = action.kind
            if kind == "launch":
                job = sim.jobs.get(action.job_id)
                if job is None:
                    raise PlanRejected(f"launch of unknown job {action.job_id}")
                if action.job_id in sim.running:
                    raise PlanRejected(f"launch of job {action.job_id}, which already runs")
                if action.job_id not in pending_ids:
                    raise PlanRejected(f"launch of job {action.job_id}, which is not queued")
                if job.total_workers < job.spec.min_workers:
                    raise PlanRejected(
                        f"launch of job {action.job_id} with "
                        f"{job.total_workers} < {job.spec.min_workers} "
                        f"workers staged (gang semantics, §6)"
                    )
                will_run.add(action.job_id)
            elif kind in ("scale_out", "scale_in"):
                job = sim.jobs.get(action.job_id)
                if job is None:
                    raise PlanRejected(f"{kind} of unknown job {action.job_id}")
                if getattr(action, "staged", True):
                    if action.job_id not in will_run:
                        raise PlanRejected(
                            f"{kind} of job {action.job_id}, which is not "
                            f"running in this plan"
                        )
                    if kind == "scale_in":
                        try:
                            check_scale_floor(
                                action.job_id,
                                action.workers,
                                job.spec.min_workers,
                            )
                        except ElasticControllerError as exc:
                            raise PlanRejected(str(exc)) from exc
            elif kind == "preempt":
                if action.job_id not in sim.jobs:
                    raise PlanRejected(f"preempt of unknown job {action.job_id}")
            elif kind == "loan_servers":
                for server_id in action.server_ids:
                    if server_id not in sim.pair.inference:
                        raise PlanRejected(
                            f"loan of {server_id!r}, which is not in the "
                            f"inference whitelist"
                        )
                    server = sim.pair.inference.get(server_id)
                    if not server.idle:
                        raise PlanRejected(f"loan of busy server {server_id!r}")
                    if not sim.rm.is_healthy(server_id):
                        raise PlanRejected(f"loan of unhealthy server {server_id!r}")
            elif kind == "reclaim_servers":
                if action.route_around:
                    for server_id in action.server_ids:
                        if server_id not in sim.pair.training:
                            raise PlanRejected(
                                f"route-around return of {server_id!r}, "
                                f"which is not in the training whitelist"
                            )
                        if sim.rm.containers_on(server_id):
                            raise PlanRejected(
                                f"route-around return of {server_id!r}, "
                                f"which still hosts containers"
                            )
                elif action.demand <= 0:
                    raise PlanRejected(f"reclaim with non-positive demand {action.demand}")
            elif kind == "migrate_job":
                self._validate_migrate(action)
            else:
                raise PlanRejected(f"unknown action kind {kind!r}")

    def _validate_migrate(self, action: MigrateJob) -> None:
        sim = self.sim
        job = sim.jobs.get(action.job_id)
        if job is None:
            raise PlanRejected(f"migrate of unknown job {action.job_id}")
        if action.job_id not in sim.running:
            raise PlanRejected(f"migrate of job {action.job_id}, which is not running")
        if action.source not in job.servers:
            raise PlanRejected(
                f"migrate of job {action.job_id} off {action.source!r}, "
                f"where it has no workers"
            )
        if action.target not in sim.pair.training:
            raise PlanRejected(
                f"migrate target {action.target!r} is not in the training "
                f"whitelist"
            )
        if not sim.rm.is_healthy(action.target):
            raise PlanRejected(f"migrate target {action.target!r} is unhealthy")
        target = sim.pair.training.get(action.target)
        needed = job.gpus_on(action.source)
        if target.free_gpus < needed:
            raise PlanRejected(
                f"migrate target {action.target!r} has "
                f"{target.free_gpus} free GPUs, {needed} needed"
            )

    # -- commit ----------------------------------------------------------
    def _commit(self, action: Action) -> None:
        sim = self.sim
        kind = action.kind
        if kind == "launch":
            sim._commit_start(
                sim.jobs[action.job_id],
                action.workers,
                action.queued_s,
                action.eta,
            )
        elif kind == "scale_out":
            sim._commit_rescale(sim.jobs[action.job_id], True, action.workers, action.eta)
        elif kind == "scale_in":
            if action.staged:
                sim._commit_rescale(sim.jobs[action.job_id], False, action.workers, action.eta)
            elif action.job_id in sim.running:
                sim.scale_in_worker_counts(sim.jobs[action.job_id], dict(action.removals))
        elif kind == "preempt":
            if action.job_id in sim.running:
                sim.preempt(sim.jobs[action.job_id], cause=action.cause)
        elif kind == "loan_servers":
            self._commit_loan(action)
        elif kind == "reclaim_servers":
            if action.route_around:
                self._commit_route_around(action)
            else:
                self._commit_reclaim(action)
        elif kind == "migrate_job":
            self._commit_migrate(action)

    def _commit_loan(self, action: LoanServers) -> None:
        sim = self.sim
        moved = sim.rm.loan_selected(
            action.server_ids, now=sim.now,
            borrower=getattr(action, "borrower", None),
        )
        if moved:
            server_ids = [s.server_id for s in moved]
            sim.metrics.loan_ops.append(len(moved))
            extra = {}
            if getattr(action, "lender", None) is not None:
                extra["lender"] = action.lender
            if getattr(action, "borrower", None) is not None:
                extra["borrower"] = action.borrower
            sim.log(EventKind.LOAN, detail=server_ids,
                    servers=server_ids, requested=action.requested, **extra)
            logger.debug("loaned %d servers at %.0f", len(moved), sim.now)
            sim.note_trigger(TRIGGER_LOAN, servers=len(moved))
            sim.trigger_schedule()

    def _commit_route_around(self, action: ReclaimServers) -> None:
        sim = self.sim
        returned = 0
        for server_id, unhealthy, straggling in action.health:
            sim.rm.return_server(server_id, now=sim.now)
            returned += 1
            sim.trace(
                "recovery.reclaim_route_around",
                server_id=server_id,
                unhealthy=unhealthy,
                straggling=straggling,
            )
        if returned:
            if action.record_metrics:
                sim.metrics.reclaim_ops.append(returned)
            sim.note_trigger(
                TRIGGER_RECLAIM, servers=returned, route_around=True
            )
            sim.trigger_schedule()

    def _commit_reclaim(self, action: ReclaimServers) -> None:
        """Execute a reclaim plan's server returns (§4).

        The plan's scale-ins and preemptions precede this action in the
        plan, so by now the listed servers should be vacant; any
        allocation left behind is force-cleared exactly as the legacy
        path did (defensive — should not trigger).
        """
        sim = self.sim
        preempted: Set[int] = set(action.preempted)
        servers_list = list(action.server_ids)
        returned = 0
        gpus_per_server = 0
        for server_id in servers_list:
            if server_id not in sim.pair.training:
                continue
            server = sim.pair.training.get(server_id)
            for job_id in list(server.allocations):
                if job_id in sim.running:
                    sim.preempt(sim.jobs[job_id], cause="reclaim")
                    preempted.add(job_id)
                else:  # released placement left behind: clean up
                    server.release(job_id)
            gpus_per_server = server.num_gpus
            sim.rm.return_server(server_id, now=sim.now)
            returned += 1
        collateral_frac = None
        if gpus_per_server:
            collateral_frac = action.collateral_gpus / (action.demand * gpus_per_server)
        if returned and action.record_metrics:
            sim.metrics.reclaim_ops.append(returned)
            sim.metrics.flex_satisfied.append(min(1.0, action.free_servers / action.demand))
            if collateral_frac is not None:
                sim.metrics.collateral.append(collateral_frac)
        if returned:
            costs = dict(action.costs) if action.costs is not None else None
            extra = {}
            if getattr(action, "lender", None) is not None:
                extra["lender"] = action.lender
            sim.log(
                EventKind.RECLAIM,
                detail={
                    "servers": servers_list,
                    "preempted": sorted(preempted),
                },
                demand=action.demand,
                servers=list(servers_list),
                preempted=sorted(preempted),
                scaled_in=list(action.scaled_in),
                free_servers=action.free_servers,
                collateral=collateral_frac,
                preemption_costs=costs,
                inference_driven=action.record_metrics,
                **extra,
            )
            logger.info(
                "reclaimed %d/%d servers at %.0f (%d preemptions, " "%d scale-ins)",
                returned,
                action.demand,
                sim.now,
                len(preempted),
                len(action.scaled_in),
            )
            sim.note_trigger(
                TRIGGER_RECLAIM, servers=returned, demand=action.demand
            )
            sim.trigger_schedule()

    def _commit_migrate(self, action: MigrateJob) -> None:
        sim = self.sim
        job = sim.jobs[action.job_id]
        target = sim.pair.training.get(action.target)
        sim.rm.migrate_job(job, action.source, target, now=sim.now)
        sim.log(
            EventKind.MIGRATE,
            job.job_id,
            detail={"from": action.source, "to": action.target},
            source=action.source,
            target=action.target,
        )
        sim._reschedule_completion(job)
