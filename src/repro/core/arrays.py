"""Structure-of-arrays scheduling core (the ``view_backend="array"`` path).

At 16k servers / 200k jobs the per-object Python iteration behind the
:class:`~repro.core.view.ClusterView` dominates every phase the
PhaseProfiler measures: ranking placement candidates walks and sorts
thousands of ``Server`` objects per placed job, and the FIFO/SJF
admission scan touches every pending job per epoch.
:class:`ArrayClusterView` mirrors the *hot* server state into numpy
structure-of-arrays columns — free levels, on-loan flags, GPU-type
codes, placement-group codes, perf factors — maintained from exactly
the same deltas that already feed the dict-indexed view
(``Server._on_change``, ``server_added``/``server_removed``, the
queue/health notes), and answers the placement engine's questions with
vectorized masks instead of object scans.

Bit-exactness contract
----------------------

The array backend must keep every golden scenario byte-identical to the
legacy full-scan path.  Three rules make that tractable:

* **Integer state is mirrored, float state is ranked.**  Free levels,
  capacities and worker costs are integers — vector math over them is
  exact.  Float values (perf factors, preemption costs) are only ever
  *compared*, never re-accumulated in a different order.
* **Selection is by total order.**  The placement sort key ends in
  ``server_id``, so the best candidate is unique; ``np.lexsort`` over
  the key columns picks the same server a sorted Python list would,
  regardless of slot order.
* **Version discipline is inherited.**  The array columns piggyback on
  the parent view's delta entry points and never add version bumps of
  their own, so epoch-skipping and version-keyed caches behave exactly
  as they do under ``view_backend="incremental"``.

Snapshot/restore: numpy columns are *derived* state.  ``__getstate__``
drops them and restore rebuilds lazily on first query (the parent's
dict indexes stay pickled for bucket-order fidelity); every array
answer is slot-order independent, so a rebuilt layout cannot change
decisions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.server import BASE_GROUP, FLEX_GROUP, Server
from repro.core.view import ClusterView

#: group codes mirrored into the ``group_code`` column
_GROUP_CODES = {None: 0, BASE_GROUP: 1, FLEX_GROUP: 2}

#: initial slot capacity; columns grow geometrically
_INITIAL_SLOTS = 64


class ArrayClusterView(ClusterView):
    """A :class:`ClusterView` that also maintains numpy hot-state columns.

    The dict-indexed state of the parent class is still maintained (it
    is the pickled source of truth and serves ``pools()`` /
    ``ordered_pending`` / the bucket index); the arrays add vectorized
    candidate selection (:meth:`select_best`), domain capacity
    (:meth:`domain_capacity`) and bulk admission masks
    (:meth:`admission_arrays` callers in ``SchedulerPolicy``).
    """

    #: capability tag checked by the placement engine / policy helpers
    backend = "array"

    def __init__(
        self,
        cluster: Cluster,
        default_onloan_cost: float = 3.0,
        jobs=None,
        attach: bool = True,
    ):
        # _arrays_ready means "the column containers exist and are
        # delta-current"; it must be True before super().__init__ so the
        # initial rebuild() can index into them, and False after an
        # unpickle until _ensure_arrays() reconstructs them.
        self._arr_init()
        self._arrays_ready = True
        super().__init__(
            cluster,
            default_onloan_cost=default_onloan_cost,
            jobs=jobs,
            attach=attach,
        )

    # ------------------------------------------------------------------
    # column storage
    # ------------------------------------------------------------------
    def _arr_init(self, slots: int = _INITIAL_SLOTS) -> None:
        self._free = np.zeros(slots, dtype=np.int64)
        self._num_gpus = np.zeros(slots, dtype=np.int64)
        self._on_loan = np.zeros(slots, dtype=bool)
        self._type_code = np.zeros(slots, dtype=np.int64)
        self._group_code = np.zeros(slots, dtype=np.int64)
        self._perf = np.ones(slots, dtype=np.float64)
        self._has_alloc = np.zeros(slots, dtype=bool)
        self._active = np.zeros(slots, dtype=bool)
        self._id_rank = np.zeros(slots, dtype=np.int64)
        self._slot_of: Dict[str, int] = {}
        self._server_at: List[Optional[Server]] = [None] * slots
        self._free_slots: List[int] = list(range(slots - 1, -1, -1))
        #: GPU type name -> column code, and per-code relative compute
        self._type_codes: Dict[str, int] = {}
        self._rel_by_code: List[float] = []
        self._ranks_stale = True

    def _arr_reset(self) -> None:
        self._arr_init(len(self._active))

    def _grow(self) -> None:
        old = len(self._active)
        new = old * 2
        for name in (
            "_free", "_num_gpus", "_on_loan", "_type_code", "_group_code",
            "_perf", "_has_alloc", "_active", "_id_rank",
        ):
            col = getattr(self, name)
            grown = np.zeros(new, dtype=col.dtype)
            if name == "_perf":
                grown[:] = 1.0
            grown[:old] = col
            setattr(self, name, grown)
        self._server_at.extend([None] * (new - old))
        self._free_slots.extend(range(new - 1, old - 1, -1))

    def _code_for(self, type_name: str, rel_compute: float) -> int:
        code = self._type_codes.get(type_name)
        if code is None:
            code = len(self._rel_by_code)
            self._type_codes[type_name] = code
            self._rel_by_code.append(rel_compute)
        return code

    # ------------------------------------------------------------------
    # delta maintenance (piggybacks on the parent's entry points)
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        if not getattr(self, "_arrays_ready", False):
            self._arr_init()
            self._arrays_ready = True
        else:
            self._arr_reset()
        super().rebuild()

    def _index(self, server: Server) -> None:
        super()._index(server)
        if not self._arrays_ready:
            return
        if not self._free_slots:
            self._grow()
        slot = self._free_slots.pop()
        sid = server.server_id
        self._slot_of[sid] = slot
        self._server_at[slot] = server
        self._free[slot] = server.free_gpus
        self._num_gpus[slot] = server.num_gpus
        self._on_loan[slot] = server.on_loan
        self._type_code[slot] = self._code_for(
            server.gpu_type.name, server.gpu_type.relative_compute
        )
        self._group_code[slot] = _GROUP_CODES[server.group]
        self._perf[slot] = server.perf_factor
        self._has_alloc[slot] = bool(server.allocations)
        self._active[slot] = True
        self._ranks_stale = True

    def _deindex(self, server: Server) -> None:
        super()._deindex(server)
        if not self._arrays_ready:
            return
        slot = self._slot_of.pop(server.server_id, None)
        if slot is None:
            return
        self._active[slot] = False
        self._server_at[slot] = None
        self._free_slots.append(slot)
        self._ranks_stale = True

    def server_changed(self, server: Server) -> None:
        super().server_changed(server)
        if not self._arrays_ready:
            return
        slot = self._slot_of.get(server.server_id)
        if slot is not None:
            self._free[slot] = server.free_gpus
            self._has_alloc[slot] = bool(server.allocations)
            self._group_code[slot] = _GROUP_CODES[server.group]

    def note_group_change(self, server: Server) -> None:
        """A member server's placement group was (re)assigned.

        Group assignment happens *after* the allocation hook fires (and
        group rollback after the release hook), so the column refresh in
        :meth:`server_changed` cannot see it — placement and the plan
        journal call this explicitly.  No version bump: the base view
        reads ``Server.group`` live and bumps via the accompanying
        allocate/release delta.
        """
        if not self._arrays_ready:
            return
        slot = self._slot_of.get(server.server_id)
        if slot is not None:
            self._group_code[slot] = _GROUP_CODES[server.group]

    def note_server_attrs(self, server: Server) -> None:
        """A member server's non-book attributes changed (perf factor)."""
        if self._arrays_ready:
            slot = self._slot_of.get(server.server_id)
            if slot is not None:
                self._perf[slot] = server.perf_factor
        super().note_server_attrs(server)

    # ------------------------------------------------------------------
    # serialization: arrays are derived state — drop and rebuild lazily
    # ------------------------------------------------------------------
    _ARRAY_FIELDS = (
        "_free", "_num_gpus", "_on_loan", "_type_code", "_group_code",
        "_perf", "_has_alloc", "_active", "_id_rank", "_slot_of",
        "_server_at", "_free_slots", "_type_codes", "_rel_by_code",
        "_ranks_stale",
    )

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        for name in self._ARRAY_FIELDS:
            state.pop(name, None)
        state["_arrays_ready"] = False
        return state

    def __setstate__(self, state: dict) -> None:
        # columns absent until the first query; delta entry points guard
        # on _arrays_ready and the parent dict state carries everything
        self.__dict__.update(state)

    def _ensure_arrays(self) -> None:
        if self._arrays_ready:
            return
        self._arr_init()
        for server in self.cluster.servers:
            if not self._free_slots:
                self._grow()
            slot = self._free_slots.pop()
            sid = server.server_id
            self._slot_of[sid] = slot
            self._server_at[slot] = server
            self._free[slot] = server.free_gpus
            self._num_gpus[slot] = server.num_gpus
            self._on_loan[slot] = server.on_loan
            self._type_code[slot] = self._code_for(
                server.gpu_type.name, server.gpu_type.relative_compute
            )
            self._group_code[slot] = _GROUP_CODES[server.group]
            self._perf[slot] = server.perf_factor
            self._has_alloc[slot] = bool(server.allocations)
            self._active[slot] = True
        self._ranks_stale = True
        self._arrays_ready = True

    def _ranks(self) -> np.ndarray:
        """Lexicographic rank of each active slot's server id.

        Makes ``server_id`` usable as the final tie-break column of a
        vectorized sort key: recomputed only when membership changes
        (loans/reclaims), which is orders of magnitude rarer than
        placement queries.
        """
        if self._ranks_stale:
            for rank, sid in enumerate(sorted(self._slot_of)):
                self._id_rank[self._slot_of[sid]] = rank
            self._ranks_stale = False
        return self._id_rank

    # ------------------------------------------------------------------
    # vectorized queries
    # ------------------------------------------------------------------
    def _worker_cost_by_code(self, gpus_per_worker: int) -> np.ndarray:
        """Per-type physical GPUs per worker (§5.2 normalization)."""
        rel = np.asarray(self._rel_by_code, dtype=np.float64)
        if rel.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.ceil(gpus_per_worker / rel).astype(np.int64)

    def _eligible_mask(
        self,
        gpus_per_worker: int,
        train_ok: bool,
        loan_ok: bool,
        type_lock: Optional[str],
        unhealthy_ids: Optional[Set[str]] = None,
    ) -> Optional[np.ndarray]:
        """Boolean slot mask of servers able to host one worker."""
        self._ensure_arrays()
        cost_by_code = self._worker_cost_by_code(gpus_per_worker)
        if cost_by_code.size == 0:
            return None
        mask = self._active.copy()
        if not train_ok:
            mask &= self._on_loan
        if not loan_ok:
            mask &= ~self._on_loan
        if type_lock is not None:
            code = self._type_codes.get(type_lock)
            if code is None:
                return None
            mask &= self._type_code == code
        cost = cost_by_code[self._type_code]
        mask &= (cost > 0) & (self._free >= cost)
        if unhealthy_ids:
            for sid in unhealthy_ids:
                slot = self._slot_of.get(sid)
                if slot is not None:
                    mask[slot] = False
        return mask if mask.any() else None

    def select_best(
        self,
        gpus_per_worker: int,
        train_ok: bool,
        loan_ok: bool,
        type_lock: Optional[str],
        flexible: bool,
        heterogeneous: bool,
        elastic: bool,
        special_grouping: bool,
        unhealthy_ids: Optional[Set[str]] = None,
        exclude_ids: Optional[Set[str]] = None,
    ) -> Optional[Server]:
        """The placement engine's best candidate, without a Python sort.

        Replicates the engine's exact ranking — ``(preference tier,
        -perf_factor, idle, free_gpus, server_id)`` — over the column
        mirror.  The key is a total order, so the winner is the first
        element of the sorted candidate list the legacy scan builds.
        """
        mask = self._eligible_mask(
            gpus_per_worker, train_ok, loan_ok, type_lock, unhealthy_ids
        )
        if mask is None:
            return None
        if exclude_ids:
            for sid in exclude_ids:
                slot = self._slot_of.get(sid)
                if slot is not None:
                    mask[slot] = False
        slots = np.flatnonzero(mask)
        if slots.size == 0:
            return None
        on_loan = self._on_loan[slots]
        # preference tiers, mirroring PlacementEngine._preference
        if not special_grouping:
            pref = on_loan.astype(np.int64)
        elif heterogeneous:
            if flexible:
                pref = np.where(on_loan, 0, 1)
            else:
                pref = np.where(on_loan, 1, 0)
        elif elastic:
            wanted = _GROUP_CODES[FLEX_GROUP if flexible else BASE_GROUP]
            group = self._group_code[slots]
            pref = np.where(
                on_loan,
                np.where(group == wanted, 0, np.where(group == 0, 1, 3)),
                2,
            )
        else:
            pref = on_loan.astype(np.int64)
        order = np.lexsort((
            self._ranks()[slots],
            self._free[slots],
            ~self._has_alloc[slots],  # the `idle` key component
            -self._perf[slots],
            pref,
        ))
        return self._server_at[int(slots[order[0]])]

    def domain_capacity(
        self, on_loan: bool, cost_for_type: Callable[[str], int]
    ) -> int:
        """Whole workers one domain can host — vectorized, same integers."""
        self._ensure_arrays()
        if not self._type_codes:
            return 0
        cost_by_code = np.zeros(len(self._rel_by_code), dtype=np.int64)
        for tname, code in self._type_codes.items():
            cost_by_code[code] = cost_for_type(tname)
        mask = self._active & (self._on_loan == on_loan)
        cost = cost_by_code[self._type_code[mask]]
        free = self._free[mask]
        valid = cost > 0
        if not valid.any():
            return 0
        return int((free[valid] // cost[valid]).sum())

    def candidates(
        self,
        cost_for_type: Callable[[str], int],
        domain_ok: Callable[[bool], bool],
        type_lock: Optional[str] = None,
    ) -> List[Server]:
        """Same candidate *set* as the bucket walk, via one mask."""
        self._ensure_arrays()
        if not self._type_codes:
            return []
        cost_by_code = np.zeros(len(self._rel_by_code), dtype=np.int64)
        for tname, code in self._type_codes.items():
            cost_by_code[code] = cost_for_type(tname)
        mask = self._active.copy()
        if type_lock is not None:
            code = self._type_codes.get(type_lock)
            if code is None:
                return []
            mask &= self._type_code == code
        train_ok, loan_ok = domain_ok(False), domain_ok(True)
        if not train_ok:
            mask &= self._on_loan
        if not loan_ok:
            mask &= ~self._on_loan
        cost = cost_by_code[self._type_code]
        mask &= (cost > 0) & (self._free >= cost)
        return [self._server_at[int(s)] for s in np.flatnonzero(mask)]

    # ------------------------------------------------------------------
    # consistency (extends the parent property-test contract)
    # ------------------------------------------------------------------
    def array_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-server column values as plain comparable structures."""
        self._ensure_arrays()
        out: Dict[str, Dict[str, object]] = {}
        inv_groups = {v: k for k, v in _GROUP_CODES.items()}
        inv_types = {v: k for k, v in self._type_codes.items()}
        for sid, slot in self._slot_of.items():
            out[sid] = {
                "free": int(self._free[slot]),
                "num_gpus": int(self._num_gpus[slot]),
                "on_loan": bool(self._on_loan[slot]),
                "type": inv_types[int(self._type_code[slot])],
                "group": inv_groups[int(self._group_code[slot])],
                "perf": float(self._perf[slot]),
                "has_alloc": bool(self._has_alloc[slot]),
            }
        return out

    def assert_consistent(self) -> None:
        super().assert_consistent()
        self._ensure_arrays()
        live = self.array_snapshot()
        fresh: Dict[str, Dict[str, object]] = {}
        for server in self.cluster.servers:
            fresh[server.server_id] = {
                "free": server.free_gpus,
                "num_gpus": server.num_gpus,
                "on_loan": server.on_loan,
                "type": server.gpu_type.name,
                "group": server.group,
                "perf": server.perf_factor,
                "has_alloc": bool(server.allocations),
            }
        assert live == fresh, (
            f"array mirror drift:\n  mirror: {live!r}\n  rebuilt: {fresh!r}"
        )
        active = int(self._active.sum())
        assert active == len(self._slot_of) == len(fresh), (
            f"slot bookkeeping drift: {active} active slots, "
            f"{len(self._slot_of)} mapped, {len(fresh)} servers"
        )
