"""Server reclaiming: which on-loan servers to return (§4).

Reclaiming a server preempts every job whose *base* (inelastic) workers run
on it — an expensive event, since jobs without checkpointing lose all
progress.  Selecting the cheapest set of servers is a knapsack problem with
*dependent* item values (preempting a job zeroes its contribution to every
other server it spans), which is NP-hard.  Lyra's heuristic:

1. Vacate servers that host no base workers at all — idle servers and
   servers carrying only elastic *flexible* workers (the FLEX server group
   from placement, §5.3) — by scaling elastic jobs in.  No preemption.
2. Define each remaining server's **preemption cost** as the sum over its
   base-hosting jobs of that job's *server fraction*: ``1 / (number of
   servers hosting the job's base workers)`` (Table 1, third column).
3. Greedily pick the lowest-cost server, preempt its jobs everywhere,
   update costs (tie-breaking on collateral damage), and repeat until
   enough servers are vacated — counting servers that became idle as a
   cascade of the preemptions.

Random and smallest-job-count-first (SCF) baselines and an exhaustive
optimal search (used in §7.3's comparison) live here too.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cluster.job import Job
from repro.cluster.server import Server


class CostModel(enum.Enum):
    """Server preemption-cost definitions compared in Table 1."""

    JOB_COUNT = "job_count"
    GPU_FRACTION = "gpu_fraction"
    SERVER_FRACTION = "server_fraction"


@dataclass
class ReclaimPlan:
    """Outcome of a reclaim decision.

    Attributes:
        servers: Ids of the servers to return, in selection order.
        preempted_jobs: Ids of jobs that must be fully preempted.
        scaled_in: ``{job_id: {server_id: workers}}`` flexible workers to
            remove without preempting the job.
        collateral_gpus: GPUs vacated on servers *not* being returned, as
            a side effect of preemptions (the §7.3 collateral-damage
            numerator).
    """

    servers: List[str] = field(default_factory=list)
    preempted_jobs: Set[int] = field(default_factory=set)
    scaled_in: Dict[int, Dict[str, int]] = field(default_factory=dict)
    collateral_gpus: int = 0
    #: servers vacated without any preemption (idle or flex-only, §5.3)
    free_servers: int = 0

    @property
    def num_preemptions(self) -> int:
        return len(self.preempted_jobs)


# ----------------------------------------------------------------------
# cost computation
# ----------------------------------------------------------------------
def _base_jobs_on(server: Server, jobs: Mapping[int, Job]) -> List[Job]:
    """Jobs whose base workers occupy ``server`` (these would be preempted)."""
    found = []
    for job_id in server.allocations:
        job = jobs[job_id]
        if server.server_id in job.base_placement:
            found.append(job)
    return found


def job_preemption_cost(
    job: Job,
    server_id: str,
    model: CostModel = CostModel.SERVER_FRACTION,
    base_span: Optional[Set[str]] = None,
    full_span: Optional[Set[str]] = None,
) -> float:
    """Cost contribution of one base-hosting job to vacating ``server_id``.

    The single source of truth for Table 1's three cost definitions,
    shared by the cached :func:`preemption_cost_index` and the greedy
    planner's live loop.  The greedy passes its working ``base_span`` /
    ``full_span`` placement copies so costs track simulated preemptions
    and scale-ins; index callers omit them and get the live placement.
    Historically the two paths computed GPU_FRACTION differently — GPUs
    over ``job.servers`` in the index vs workers over the working span
    in the loop — so the cached index could silently disagree with the
    costs the greedy actually paid; both now route through here (pinned
    equal by tests/test_reclaim.py and the repro.oracle conformance
    checks).
    """
    if model is CostModel.JOB_COUNT:
        return 1.0
    if model is CostModel.GPU_FRACTION:
        span = job.servers if full_span is None else full_span
        total = sum(job.gpus_on(sid) for sid in span)
        return job.gpus_on(server_id) / total if total else 0.0
    span = job.base_placement if base_span is None else base_span
    return 1.0 / max(1, len(span))


def server_preemption_cost(
    server: Server,
    jobs: Mapping[int, Job],
    model: CostModel = CostModel.SERVER_FRACTION,
) -> float:
    """Preemption cost of returning ``server`` under a cost model.

    The SERVER_FRACTION model (Lyra's choice) charges ``1/span`` per
    base-hosting job, so a server fully owning one big job costs 1.0
    while a server hosting slivers of many multi-server jobs costs more —
    matching the worked example of Fig. 5 / Table 1.
    """
    return sum(
        job_preemption_cost(job, server.server_id, model)
        for job in _base_jobs_on(server, jobs)
    )


def preemption_cost_index(
    servers: Sequence[Server],
    jobs: Mapping[int, Job],
    model: CostModel = CostModel.SERVER_FRACTION,
) -> Dict[str, float]:
    """Preemption cost of each server, as one batch.

    The ClusterView caches this index keyed by its delta version, so the
    orchestrator's reclaim tracing reads costs without rescanning job
    placements between capacity changes.

    Batched: the per-job quantities each cost model needs — the base
    span reciprocal (SERVER_FRACTION) or the placement-wide GPU total
    (GPU_FRACTION) — are computed once per job and shared across every
    server the job touches, instead of being rederived per (server, job)
    pair as :func:`server_preemption_cost` does.  The per-server *sum*
    stays a left-to-right scan in allocation order: accumulating through
    a numpy reduction would round differently (pairwise summation) and
    break bit-equality with the scalar path, which tests pin.
    """
    if model is CostModel.GPU_FRACTION:
        shared: Dict[int, float] = {}

        def term(job: Job, server_id: str) -> float:
            total = shared.get(job.job_id)
            if total is None:
                total = sum(job.gpus_on(sid) for sid in job.servers)
                shared[job.job_id] = total
            return job.gpus_on(server_id) / total if total else 0.0

    elif model is CostModel.SERVER_FRACTION:
        shared = {}

        def term(job: Job, server_id: str) -> float:
            value = shared.get(job.job_id)
            if value is None:
                value = 1.0 / max(1, len(job.base_placement))
                shared[job.job_id] = value
            return value

    else:  # JOB_COUNT

        def term(job: Job, server_id: str) -> float:
            return 1.0

    index: Dict[str, float] = {}
    for server in servers:
        sid = server.server_id
        total = 0
        for job_id in server.allocations:
            job = jobs[job_id]
            if sid in job.base_placement:
                total = total + term(job, sid)
        # NB: an empty sum stays the int 0, exactly like the historical
        # ``sum(...)`` — downstream reprs (plan cost details) see the
        # same token stream either way.
        index[sid] = total
    return index


def preemption_cost_matrix(
    servers: Sequence[Server],
    jobs: Mapping[int, Job],
    model: CostModel = CostModel.SERVER_FRACTION,
) -> Tuple[List[str], "object"]:
    """``(server_ids, costs)`` with costs as a numpy vector.

    A thin array-shaped façade over :func:`preemption_cost_index` for
    callers that rank or threshold many candidates at once (dry-run
    pricing sweeps, benchmarks).  Values are exactly the index's — the
    vector is built from it, not re-accumulated — so both presentations
    always agree bit-for-bit.
    """
    import numpy as np

    index = preemption_cost_index(servers, jobs, model)
    ids = [server.server_id for server in servers]
    return ids, np.array([index[sid] for sid in ids], dtype=np.float64)


def initial_greedy_costs(
    candidates: Sequence[Server],
    jobs: Mapping[int, Job],
    model: CostModel = CostModel.SERVER_FRACTION,
) -> Dict[str, float]:
    """Per-server cost exactly as the greedy loop's *first* iteration sees it.

    Builds the same working placement copies as :func:`plan_reclaim_lyra`
    and prices every candidate before any simulated preemption.  On a
    consistent cluster this must equal :func:`preemption_cost_index` for
    every cost model — the drift between the two GPU_FRACTION code paths
    was exactly the bug this pin exists to catch (tests/test_reclaim.py
    and the repro.oracle conformance runner both enforce it).
    """
    base_map: Dict[int, Set[str]] = {}
    flex_map: Dict[int, Dict[str, int]] = {}
    for server in candidates:
        for job_id in server.allocations:
            job = jobs[job_id]
            base_map.setdefault(job.job_id, set(job.base_placement))
            flex_map.setdefault(job.job_id, dict(job.flex_placement))
    costs: Dict[str, float] = {}
    for server in candidates:
        sid = server.server_id
        costs[sid] = sum(
            job_preemption_cost(
                jobs[j],
                sid,
                model,
                base_span=base_map[j],
                full_span=base_map[j] | set(flex_map.get(j, {})),
            )
            for j, sids in base_map.items()
            if sid in sids
        )
    return costs


# ----------------------------------------------------------------------
# Lyra's greedy heuristic
# ----------------------------------------------------------------------
def plan_reclaim_lyra(
    candidates: Sequence[Server],
    jobs: Mapping[int, Job],
    count: int,
    cost_model: CostModel = CostModel.SERVER_FRACTION,
    scale_in_first: bool = True,
) -> ReclaimPlan:
    """Choose ``count`` on-loan servers to return, minimizing preemptions.

    Args:
        candidates: On-loan servers eligible for return.
        jobs: All jobs keyed by id (used to resolve placements).
        count: Number of servers the inference scheduler asked back.
        cost_model: Preemption-cost definition (ablation knob).
        scale_in_first: Release flexible-only servers via elastic
            scale-in before resorting to preemption (§5.3 interplay).

    Returns:
        A :class:`ReclaimPlan`.  If fewer than ``count`` candidates
        exist, everything available is returned.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    plan = ReclaimPlan()
    if count == 0:
        return plan
    remaining: Dict[str, Server] = {s.server_id: s for s in candidates}
    # Working copies of placement state so we can simulate preemptions.
    base_map: Dict[int, Set[str]] = {}
    flex_map: Dict[int, Dict[str, int]] = {}
    for server in candidates:
        for job_id in server.allocations:
            job = jobs[job_id]
            base_map.setdefault(job.job_id, set(job.base_placement))
            flex_map.setdefault(job.job_id, dict(job.flex_placement))

    def hosts_base(sid: str) -> List[int]:
        return [j for j, sids in base_map.items() if sid in sids]

    def hosts_flex(sid: str) -> List[int]:
        return [j for j, sids in flex_map.items() if sid in sids]

    def take(sid: str) -> None:
        """Mark a server as selected, scaling in its flexible workers."""
        for job_id in hosts_flex(sid):
            workers = flex_map[job_id].pop(sid)
            plan.scaled_in.setdefault(job_id, {})[sid] = workers
        plan.servers.append(sid)
        del remaining[sid]

    # Phase 0: servers already free of base workers (idle or flex-only).
    if scale_in_first:
        free_now = sorted(
            (sid for sid in remaining if not hosts_base(sid)),
            key=lambda sid: (len(hosts_flex(sid)), sid),
        )
        for sid in free_now:
            if len(plan.servers) >= count:
                break
            take(sid)
            plan.free_servers += 1
    if len(plan.servers) >= count:
        return plan

    def cost_of(sid: str) -> float:
        return sum(
            job_preemption_cost(
                jobs[j],
                sid,
                cost_model,
                base_span=base_map[j],
                full_span=base_map[j] | set(flex_map.get(j, {})),
            )
            for j in hosts_base(sid)
        )

    def tie_break(sid: str):
        """Cascade benefit vs collateral damage of preempting ``sid``.

        Preempting this server's jobs may fully vacate *other candidate*
        servers — those count toward the reclaim demand (good), while
        GPUs freed on servers that stay occupied or are not candidates
        are collateral damage (bad).  Returns ``(-cascade, collateral)``
        so that min() prefers big cascades, then small damage.
        """
        victims = set(hosts_base(sid))
        cascade = 0
        collateral = 0
        for other, server in remaining.items():
            if other == sid:
                continue
            other_base = set(hosts_base(other))
            freed = sum(
                jobs[j].gpus_on(other) for j in other_base & victims
            )
            if other_base and other_base <= victims:
                cascade += 1
            elif freed:
                collateral += freed
        for job_id in victims:
            for other in base_map[job_id] | set(flex_map.get(job_id, {})):
                if other != sid and other not in remaining:
                    collateral += jobs[job_id].gpus_on(other)
        return (-cascade, collateral)

    # Greedy phase: repeatedly take the cheapest server.
    while len(plan.servers) < count and remaining:
        sid = min(remaining, key=lambda s: (cost_of(s), *tie_break(s), s))
        for job_id in hosts_base(sid):
            plan.preempted_jobs.add(job_id)
            # Preemption removes the job from *every* server it touches.
            base_map[job_id] = set()
            flex_map[job_id] = {}
        take(sid)
        # Cascade: preemptions may have idled other candidates; take the
        # now-free ones before paying for another preemption.
        if scale_in_first:
            for other in sorted(list(remaining)):
                if len(plan.servers) >= count:
                    break
                if not hosts_base(other):
                    take(other)
    # Collateral damage: GPUs the preempted jobs vacate on servers that
    # are *not* being returned (§7.3 definition).
    returned = set(plan.servers)
    for job_id in plan.preempted_jobs:
        job = jobs[job_id]
        plan.scaled_in.pop(job_id, None)
        for sid in job.servers:
            if sid not in returned:
                plan.collateral_gpus += job.gpus_on(sid)
    return plan


# ----------------------------------------------------------------------
# baselines (§7.3)
# ----------------------------------------------------------------------
def plan_reclaim_random(
    candidates: Sequence[Server],
    jobs: Mapping[int, Job],
    count: int,
    rng: Optional[random.Random] = None,
) -> ReclaimPlan:
    """Return ``count`` on-loan servers chosen uniformly at random."""
    rng = rng or random.Random()
    order = list(candidates)
    rng.shuffle(order)
    return _plan_from_order(order, jobs, count)


def plan_reclaim_scf(
    candidates: Sequence[Server], jobs: Mapping[int, Job], count: int
) -> ReclaimPlan:
    """Smallest (job) Count First: fewest running jobs per server."""
    order = sorted(candidates, key=lambda s: (s.job_count, s.server_id))
    return _plan_from_order(order, jobs, count)


def _plan_from_order(
    order: Sequence[Server], jobs: Mapping[int, Job], count: int
) -> ReclaimPlan:
    """Build a plan that takes servers in the given fixed order."""
    plan = ReclaimPlan()
    selected: List[Server] = list(order[:count])
    selected_ids = {s.server_id for s in selected}
    for server in selected:
        plan.servers.append(server.server_id)
        if not any(
            server.server_id in jobs[j].base_placement for j in server.allocations
        ):
            plan.free_servers += 1
        for job_id in list(server.allocations):
            job = jobs[job_id]
            if server.server_id in job.base_placement:
                if job_id not in plan.preempted_jobs:
                    plan.preempted_jobs.add(job_id)
                    for other in job.servers:
                        if other not in selected_ids:
                            plan.collateral_gpus += job.gpus_on(other)
            elif server.server_id in job.flex_placement:
                plan.scaled_in.setdefault(job_id, {})[server.server_id] = (
                    job.flex_placement[server.server_id]
                )
    # A preempted job's flexible workers die with it; drop redundant entries.
    for job_id in plan.preempted_jobs:
        plan.scaled_in.pop(job_id, None)
    return plan


# ----------------------------------------------------------------------
# exhaustive optimal (§7.3 comparison)
# ----------------------------------------------------------------------
def plan_reclaim_optimal(
    candidates: Sequence[Server],
    jobs: Mapping[int, Job],
    count: int,
    max_candidates: int = 24,
) -> ReclaimPlan:
    """Exhaustively find a preemption-minimal reclaim plan.

    Searches subsets of servers to preempt-clear, allowing servers idled
    as a cascade to count toward the demand — the same accounting the
    greedy heuristic uses.  Exponential: guarded by ``max_candidates``.
    """
    if len(candidates) > max_candidates:
        raise ValueError(
            f"{len(candidates)} candidates exceeds exhaustive-search limit "
            f"{max_candidates}"
        )
    count = min(count, len(candidates))

    def evaluate(subset: Tuple[Server, ...]) -> Optional[ReclaimPlan]:
        plan = _plan_from_order(list(subset), jobs, len(subset))
        # Cascade: candidates left with no base workers once the
        # preempted jobs are gone can be vacated for free.
        vacated = set(plan.servers)
        for server in candidates:
            if server.server_id in vacated:
                continue
            base_jobs = [
                j.job_id
                for j in _base_jobs_on(server, jobs)
                if j.job_id not in plan.preempted_jobs
            ]
            if not base_jobs:
                vacated.add(server.server_id)
                plan.servers.append(server.server_id)
                for job_id in server.allocations:
                    if (
                        job_id not in plan.preempted_jobs
                        and server.server_id in jobs[job_id].flex_placement
                    ):
                        plan.scaled_in.setdefault(job_id, {})[
                            server.server_id
                        ] = jobs[job_id].flex_placement[server.server_id]
            if len(plan.servers) >= count:
                break
        if len(plan.servers) < count:
            return None
        plan.servers = plan.servers[:count]
        # _plan_from_order charged collateral against the subset alone;
        # recompute it against the final selection so GPUs on cascade-
        # vacated servers that ARE being returned no longer count as
        # damage (§7.3 definition: GPUs freed on unreturned servers).
        returned = set(plan.servers)
        plan.collateral_gpus = 0
        for job_id in plan.preempted_jobs:
            job = jobs[job_id]
            for sid in job.servers:
                if sid not in returned:
                    plan.collateral_gpus += job.gpus_on(sid)
        return plan

    best: Optional[ReclaimPlan] = None
    for size in range(0, count + 1):
        for subset in itertools.combinations(candidates, size):
            plan = evaluate(subset)
            if plan is None:
                continue
            if best is None or plan.num_preemptions < best.num_preemptions:
                best = plan
        if best is not None and best.num_preemptions <= size:
            # Sound to stop (proof, pinned by the repro.oracle brute
            # force over *job* subsets): any subset achieving k
            # preemptions is dominated by a subset of size <= k.  Shrink
            # its preempted job set to a minimal P still vacating
            # >= count candidates, call them V.  Minimality puts a base
            # host in V for every job of P (dropping a job with no such
            # host would leave V vacated).  Pick one host per job of P:
            # that subset S' has |S'| <= |P| <= k, its servers' base
            # jobs are exactly P (servers in V are base-free once P is
            # gone, so they host nothing outside P), and preempting P
            # re-vacates all of V — so evaluate(S') already achieved
            # <= k preemptions at size |S'|.  Hence a plan beating
            # `best` (< best <= size) would have been found at a
            # strictly smaller size, and searching larger subsets
            # cannot help — multi-server-job cascades included.
            break
    if best is None:
        # Not enough vacatable capacity even preempting everything.
        best = _plan_from_order(list(candidates), jobs, count)
    return best
