"""Two-phase resource allocation (§5.2).

Lyra's key insight: an elastic job's *base demand* (its minimum worker
count) is inelastic in nature — not granting it stalls the job — while its
*flexible demand* merely shortens running time.  Allocation therefore runs
in two phases:

* **Phase one** treats all inelastic demand (inelastic jobs plus elastic
  jobs' base demands) with shortest-job-first, launching as many jobs as
  possible to cut queuing time and avoid starvation.
* **Phase two** hands the leftover GPUs to elastic jobs' flexible demand by
  solving a multiple-choice knapsack (one group per elastic job, one item
  per possible extra-worker count, item value = JCT reduction) with dynamic
  programming.

Capacity is tracked as two pools — dedicated training GPUs and on-loan
inference GPUs — because only *fungible* jobs may run on loaned hardware
and a single (non-heterogeneous) job cannot straddle GPU types in one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.job import Job
from repro.core.mckp import Item, solve_mckp
from repro.obs.profiling import NULL_PROFILER, PHASE_MCKP_SOLVE

#: Placement domains an allocation can draw from.
TRAINING = "training"
ONLOAN = "onloan"
MIXED = "mixed"


@dataclass
class Pools:
    """Free capacity split by hardware domain.

    ``onloan`` is expressed in *physical* on-loan GPUs.  Per the §5.2
    normalization, on-loan inference GPUs are weaker than training GPUs:
    a worker placed there occupies ``onloan_cost`` times its nominal GPU
    demand (§7.5: three loaned T4 servers are equivalent to one training
    server, so the default cost factor is 3).  The ``total`` property is
    therefore in *training-GPU equivalents*.
    """

    training: int
    onloan: int = 0
    onloan_cost: float = 3.0

    def __post_init__(self) -> None:
        if self.training < 0 or self.onloan < 0:
            raise ValueError(f"pools must be non-negative, got {self}")
        if self.onloan_cost < 1.0:
            raise ValueError(
                f"onloan_cost must be >= 1, got {self.onloan_cost}"
            )

    @property
    def onloan_normalized(self) -> int:
        """On-loan capacity in training-GPU equivalents."""
        return int(self.onloan / self.onloan_cost)

    @property
    def total(self) -> int:
        """Capacity in training-GPU equivalents (the §5.2 normalization)."""
        return self.training + self.onloan_normalized

    def onloan_fits(self, gpus: int) -> bool:
        """Whether ``gpus`` normalized GPUs fit in the on-loan pool."""
        return gpus * self.onloan_cost <= self.onloan

    def copy(self) -> "Pools":
        return Pools(self.training, self.onloan, self.onloan_cost)


@dataclass
class AllocationDecision:
    """Result of one allocation epoch.

    Attributes:
        scheduled: Newly admitted jobs with their base demand, as
            ``(job, domain)`` — domain says which pool the base workers
            should be placed in.
        flex: Extra (flexible) workers per elastic job id, covering both
            newly scheduled and already-running elastic jobs.  A running
            job's entry is its *new* flexible worker count (may be lower
            than current: a scale-in).
        skipped: Jobs whose base demand did not fit this epoch.
        mckp_value: Total JCT-reduction value realized by phase two.
        leftover: Capacity remaining after both phases.
        mckp_groups: The exact MCKP groups phase two solved (None when
            phase two did not run).  Kept for conformance probes: the
            repro.oracle runner re-solves captured instances by brute
            force to certify the DP's optimality in situ.
        mckp_capacity: The knapsack capacity handed to the solver.
    """

    scheduled: List[Tuple[Job, str]] = field(default_factory=list)
    flex: Dict[int, int] = field(default_factory=dict)
    skipped: List[Job] = field(default_factory=list)
    mckp_value: float = 0.0
    leftover: Pools = field(default_factory=lambda: Pools(0, 0))
    mckp_groups: Optional[List[List[Item]]] = None
    mckp_capacity: int = 0


def preferred_domain(job: Job) -> str:
    """Pool a job's base workers should prefer (§5.3).

    Elastic (and fungible) jobs go to on-loan servers to maximize the
    chance reclaiming can be satisfied by scale-in; inelastic jobs stay
    on dedicated training servers.
    """
    if job.spec.fungible and job.elastic:
        return ONLOAN
    return TRAINING


def _fits(job: Job, gpus: int, pools: Pools) -> Optional[str]:
    """Pick the domain where ``gpus`` GPUs of ``job`` fit, or None.

    Honors fungibility (non-fungible jobs only run on training GPUs) and
    heterogeneous capability (may straddle both pools).
    """
    prefer = preferred_domain(job)
    order = [TRAINING, ONLOAN] if prefer == TRAINING else [ONLOAN, TRAINING]
    for domain in order:
        if domain == ONLOAN:
            if not job.spec.fungible:
                continue
            if pools.onloan_fits(gpus):
                return domain
        elif gpus <= pools.training:
            return domain
    if job.spec.heterogeneous and gpus <= pools.total:
        return MIXED
    return None


def _deduct(pools: Pools, domain: str, gpus: int) -> None:
    """Charge ``gpus`` normalized GPUs to a pool.

    On-loan charges are scaled up by the cost factor, since a worker
    there occupies proportionally more physical GPUs.
    """
    if domain == TRAINING:
        pools.training -= gpus
    elif domain == ONLOAN:
        pools.onloan -= int(round(gpus * pools.onloan_cost))
    else:  # MIXED: drain training first, remainder from on-loan
        from_training = min(gpus, pools.training)
        pools.training -= from_training
        pools.onloan -= int(
            round((gpus - from_training) * pools.onloan_cost)
        )
    if pools.training < 0 or pools.onloan < 0:
        raise RuntimeError(f"pool underflow deducting {gpus} from {domain}")


def sjf_phase(
    pending: Sequence[Job],
    pools: Pools,
    order_key=None,
    presorted: bool = False,
) -> Tuple[List[Tuple[Job, str]], List[Job]]:
    """Phase one: admit base demands shortest-job-first.

    Jobs are ordered by their (scheduler-visible) running-time estimate
    unless ``order_key`` overrides the ordering (the information-agnostic
    variant orders by attained service instead); a job that does not fit
    is skipped and the scan continues, so small jobs can backfill around
    a large blocked one.  ``presorted`` promises ``pending`` is already
    in ``order_key`` order (e.g. the ClusterView's cached queue) and
    skips the sort.

    Returns ``(scheduled, skipped)``; mutates ``pools`` in place.
    """
    if order_key is None:
        order_key = lambda j: (  # noqa: E731 - local default
            j.estimated_duration(), j.spec.submit_time, j.job_id,
        )
    scheduled: List[Tuple[Job, str]] = []
    skipped: List[Job] = []
    by_runtime = list(pending) if presorted else sorted(pending, key=order_key)
    for job in by_runtime:
        domain = _fits(job, job.spec.base_gpus, pools)
        if domain is None:
            skipped.append(job)
            continue
        _deduct(pools, domain, job.spec.base_gpus)
        scheduled.append((job, domain))
    return scheduled, skipped


def jct_reduction_value(job: Job, extra: int) -> float:
    """Lyra's item value: estimated JCT reduction of ``extra`` workers."""
    base_time = job.remaining_time_at(job.spec.min_workers) * job.estimate_error
    scaled_time = (
        job.remaining_time_at(job.spec.min_workers + extra)
        * job.estimate_error
    )
    return base_time - scaled_time


def build_flex_groups(
    elastic_jobs: Sequence[Job],
    max_weight: int,
    value_fn=jct_reduction_value,
) -> List[List[Item]]:
    """Build MCKP groups for phase two (the Fig. 6 transformation).

    For elastic job *j* with range ``[w_min, w_max]``, item *k* grants
    ``k`` extra workers; its weight is ``k * gpus_per_worker`` and its
    value ``value_fn(job, k)`` — by default the reduction in estimated
    remaining time versus running at base demand.  Items wider than
    ``max_weight`` can never fit and are pruned up front.
    """
    groups: List[List[Item]] = []
    for job in elastic_jobs:
        items: List[Item] = []
        for extra in range(1, job.spec.max_workers - job.spec.min_workers + 1):
            weight = extra * job.spec.gpus_per_worker
            if weight > max_weight:
                break
            items.append(
                Item(weight=weight, value=value_fn(job, extra),
                     payload=(job, extra))
            )
        groups.append(items)
    return groups


def allocate_two_phase(
    pending: Sequence[Job],
    running_elastic: Sequence[Job],
    pools: Pools,
    order_key=None,
    value_fn=jct_reduction_value,
    phases=None,
    presorted: bool = False,
) -> AllocationDecision:
    """Run both allocation phases for one scheduling epoch.

    Args:
        pending: Queued jobs (inelastic and elastic) awaiting admission.
        running_elastic: Elastic jobs currently running whose flexible
            workers are up for re-decision; callers must have already
            credited those workers' GPUs back into ``pools`` (§5.2: the
            available resources include GPUs used by flexible workers).
        pools: Free capacity; consumed in place.
        phases: Optional :class:`~repro.obs.profiling.PhaseProfiler`
            that times the MCKP DP solve.

    Returns:
        The combined :class:`AllocationDecision`.
    """
    if phases is None:
        phases = NULL_PROFILER
    decision = AllocationDecision()
    decision.scheduled, decision.skipped = sjf_phase(
        pending, pools, order_key=order_key, presorted=presorted
    )

    # Phase two: flexible demand of scheduled + running elastic jobs.
    elastic_jobs = [job for job, _ in decision.scheduled if job.elastic]
    elastic_jobs.extend(running_elastic)
    if elastic_jobs and pools.total > 0:
        groups = build_flex_groups(
            elastic_jobs, max_weight=pools.total, value_fn=value_fn
        )
        decision.mckp_groups = groups
        decision.mckp_capacity = pools.total
        with phases.phase(PHASE_MCKP_SOLVE):
            value, choices = solve_mckp(groups, pools.total)
        decision.mckp_value = value
        for job, choice in zip(elastic_jobs, choices):
            extra = choice.payload[1] if choice is not None else 0
            decision.flex[job.job_id] = extra
            if extra:
                _deduct_flex(pools, job, extra * job.spec.gpus_per_worker)
    else:
        for job in elastic_jobs:
            decision.flex[job.job_id] = 0
    decision.leftover = pools.copy()
    return decision


def _deduct_flex(pools: Pools, job: Job, gpus: int) -> None:
    """Charge flexible GPUs to the pools, respecting fungibility.

    Flexible workers prefer on-loan capacity (§5.3); non-fungible jobs
    may only draw from training.  MCKP solves over the *combined*
    normalized pool, so a non-fungible job's grant can exceed what the
    training pool holds; the excess is clamped — never charged to
    on-loan hardware the job cannot run on — and placement clamps the
    physically infeasible remainder of the grant itself.
    """
    if not job.spec.fungible:
        pools.training -= min(gpus, pools.training)
        return
    taken = min(gpus, pools.onloan_normalized)
    pools.onloan -= int(round(taken * pools.onloan_cost))
    pools.training -= gpus - taken
    if pools.training < 0 or pools.onloan < 0:
        # Fungible spill across the pool split; clamp at zero —
        # placement enforces physical feasibility.
        pools.training = max(0, pools.training)
        pools.onloan = max(0, pools.onloan)
