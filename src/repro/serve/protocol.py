"""Wire protocol for the serving API: line-delimited JSON over TCP.

Every request is one JSON object on one line; every response is one
JSON object on one line.  Requests carry ``op`` (the operation) and an
optional client-chosen ``id`` echoed back in the response, so clients
may pipeline.  Responses always carry ``ok``; failures carry ``error``
(a stable machine-readable code) and ``message`` (human-readable).

The event feed (the ``subscribe`` op) switches the connection into a
one-way stream of event objects — same framing, no further requests.

Job specs travel as plain dicts mirroring
:class:`~repro.cluster.job.JobSpec` fields; ``job_id`` and
``submit_time`` are daemon-assigned on submit and therefore rejected if
a client supplies them.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.cluster.job import JobSpec

#: a request line longer than this is a protocol error, not a DoS vector
MAX_LINE_BYTES = 1 << 20

#: spec fields a submit request may set (everything else is server-side)
SUBMIT_FIELDS = frozenset({
    "duration", "max_workers", "min_workers", "gpus_per_worker",
    "elastic", "fungible", "heterogeneous", "checkpointing",
    "model_family", "scaling",
})


class ProtocolError(ValueError):
    """The peer sent something that is not a valid protocol message."""


def encode(obj: dict) -> bytes:
    """One protocol frame: compact JSON + newline."""
    return (
        json.dumps(obj, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame is not a JSON object")
    return obj


def spec_from_request(
    fields: dict, job_id: int, submit_time: float
) -> JobSpec:
    """Validate a submit payload and mint the daemon-side JobSpec.

    JobSpec's own ``__post_init__`` enforces the numeric invariants
    (positive duration, worker-count ordering); this layer only rejects
    unknown fields so typos fail loudly instead of being ignored.
    """
    unknown = set(fields) - SUBMIT_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown spec fields: {sorted(unknown)}; "
            f"allowed: {sorted(SUBMIT_FIELDS)}"
        )
    if "duration" not in fields or "max_workers" not in fields:
        raise ProtocolError("submit requires 'duration' and 'max_workers'")
    try:
        return JobSpec(job_id=job_id, submit_time=submit_time, **fields)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid spec: {exc}") from exc


def spec_to_dict(spec: JobSpec) -> dict:
    return dataclasses.asdict(spec)


def spec_from_dict(d: dict) -> JobSpec:
    return JobSpec(**d)


def ok(request_id, **fields) -> dict:
    resp = {"ok": True, **fields}
    if request_id is not None:
        resp["id"] = request_id
    return resp


def err(request_id, code: str, message: Optional[str] = None) -> dict:
    resp = {"ok": False, "error": code, "message": message or code}
    if request_id is not None:
        resp["id"] = request_id
    return resp
