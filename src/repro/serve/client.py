"""Asyncio client for the serving API.

One :class:`ServeClient` wraps one TCP connection, serializing requests
on it (open several clients to pipeline — each connection's requests
are answered in order, so N connections give N in-flight requests).
The event feed uses a dedicated connection (:meth:`subscribe`) because
a subscribed connection stops answering requests.

Used by ``repro serve-cli`` style tooling, the serve tests, and the
load-generator benchmark; it is also the reference implementation for
anyone writing a client in another language.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Optional

from repro.serve import protocol


class ServeError(RuntimeError):
    """The daemon answered ``ok: false``; ``code`` is the stable error."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ServeClient:
    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    async def request(self, op: str, **fields) -> dict:
        """One round-trip; raises :class:`ServeError` on ``ok: false``."""
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self._writer.write(
                protocol.encode({"op": op, "id": request_id, **fields})
            )
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = protocol.decode_line(line)
        if not response.get("ok"):
            raise ServeError(
                response.get("error", "unknown"),
                response.get("message", ""),
            )
        return response

    # ------------------------------------------------------------------
    # convenience wrappers (one per API op)
    # ------------------------------------------------------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def submit(self, **spec_fields) -> int:
        """Submit one job; returns its daemon-assigned job id."""
        response = await self.request("submit", spec=spec_fields)
        return response["job_id"]

    async def query(self, job_id: Optional[int] = None) -> dict:
        if job_id is None:
            return await self.request("query")
        return await self.request("query", job_id=job_id)

    async def cancel(self, job_id: int) -> bool:
        response = await self.request("cancel", job_id=job_id)
        return response["cancelled"]

    async def scale(self, job_id: int, workers: int) -> dict:
        return await self.request("scale", job_id=job_id, workers=workers)

    async def stats(self) -> dict:
        return await self.request("stats")

    async def drain(self, timeout: Optional[float] = None) -> bool:
        response = await self.request("drain", timeout=timeout)
        return response["drained"]

    async def shutdown(self) -> None:
        await self.request("shutdown")

    async def subscribe(self) -> AsyncIterator[dict]:
        """Turn this connection into an event stream (no more requests
        on it afterwards); yields event dicts until the daemon closes."""
        self._writer.write(protocol.encode({"op": "subscribe"}))
        await self._writer.drain()
        ack = protocol.decode_line(await self._reader.readline())
        if not ack.get("ok"):
            raise ServeError(ack.get("error", "unknown"), ack.get("message", ""))

        async def events():
            while True:
                line = await self._reader.readline()
                if not line:
                    return
                yield protocol.decode_line(line)

        return events()
