"""The scheduler daemon: an asyncio front-end over the kernel.

One :class:`SchedulerService` hosts one
:class:`~repro.core.kernel.SchedulerKernel` on a
:class:`~repro.serve.driver.WallClockDriver` and serves the JSONL TCP
API (:mod:`repro.serve.protocol`).  Design points:

* **Epoch batching** — submits do not schedule individually; every
  state-changing request calls the kernel's ``trigger_schedule``, which
  coalesces all triggers landing within ``config.scheduler_interval``
  into one scheduling epoch.  Under a burst, one epoch plans the whole
  batch — the same batching the paper's scheduler applies to arrival
  storms.
* **Admission control** — a submit that would push the pending queue
  past ``max_pending`` is rejected with ``queue_full`` *before* any
  state changes (and before journaling), so an overloaded daemon sheds
  load at the door instead of collapsing; rejections are counted in
  ``serve.rejected``.
* **Event feed** — ``subscribe`` turns a connection into a stream of
  kernel activities.  Fan-out is through bounded per-subscriber queues;
  a slow subscriber loses oldest events (counted, never blocking the
  scheduling path).
* **Durability** — with a state directory, every acked mutation is
  journaled before the ack, the kernel snapshots at epoch boundaries,
  and the plan executor writes a per-generation WAL
  (:mod:`repro.serve.state`).  A daemon restarted on the same directory
  recovers every acked job.
* **Graceful drain** — ``drain`` (or SIGTERM via the CLI) stops
  admission and resolves once the queue and the cluster are empty.

The service is single-loop: request handlers and kernel timers
interleave on one asyncio loop, so kernel state needs no locking —
exactly the simulator's single-threaded discipline, with the event loop
as the engine.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.cluster.cluster import ClusterPair
from repro.cluster.job import JobStatus
from repro.core.kernel import SchedulerKernel, SimulationConfig
from repro.obs import Observability, get_logger
from repro.serve import protocol
from repro.serve.driver import WallClockDriver
from repro.serve.state import ServeState
from repro.simulator.events import EventKind

logger = get_logger("serve")

#: per-subscriber event buffer; beyond this, oldest events are dropped
SUBSCRIBER_QUEUE = 4096

#: how the service waits for drain/idle without polling the kernel
_DRAIN_POLL_S = 0.05


class SchedulerService:
    """One daemon instance: kernel + driver + TCP API + durability."""

    def __init__(
        self,
        pair: ClusterPair,
        policy,
        config: Optional[SimulationConfig] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 10_000,
        time_scale: float = 1.0,
        state_dir=None,
        snapshot_every_epochs: int = 1,
        obs: Optional[Observability] = None,
        orchestrator=None,
    ):
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.obs = obs if obs is not None else Observability.disabled()
        self._config = config if config is not None else SimulationConfig()
        self._pair = pair
        self._policy = policy
        self._orchestrator = orchestrator
        self._time_scale = time_scale
        self.state = ServeState(state_dir) if state_dir is not None else None
        self.snapshot_every_epochs = max(1, snapshot_every_epochs)

        self.kernel: Optional[SchedulerKernel] = None
        self.driver: Optional[WallClockDriver] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._next_job_id = 0
        #: wall-clock submit instants, for submit→scheduled latency
        self._submit_walls: Dict[int, float] = {}
        self._subscribers: List[asyncio.Queue] = []
        self.draining = False
        self._drained = asyncio.Event()
        #: set by the ``shutdown`` op; the CLI run loop awaits it
        self.shutdown_requested = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epochs = 0
        self._epochs_since_snapshot = 0
        self.recovered_jobs = 0
        self.replayed_requests = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Build (or recover) the kernel and start accepting requests."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        restored = self.state.load_kernel() if self.state else None
        if restored is not None:
            kernel, request_seq = restored
            self.kernel = kernel
            self.driver = kernel.driver
            if not isinstance(self.driver, WallClockDriver):
                # a simulator snapshot or a hand-built kernel: give it a
                # wall-clock driver resuming at the snapshot instant
                self.driver = WallClockDriver(
                    time_scale=self._time_scale, start_at=kernel.now
                )
                kernel.driver = self.driver
            # this process's time_scale wins over the snapshot's
            self.driver.time_scale = self._time_scale
            self.driver.bind(loop)
            self.kernel.recovery = None
            self.recovered_jobs = len(kernel.pending) + len(kernel.running)
            self._rearm_restored_kernel()
            self._replay_requests(request_seq)
            logger.info(
                "recovered kernel at t=%.1f: %d pending, %d running, "
                "%d journaled requests replayed",
                kernel.now, len(kernel.pending), len(kernel.running),
                self.replayed_requests,
            )
        else:
            self.driver = WallClockDriver(time_scale=self._time_scale)
            self.driver.bind(loop)
            self.kernel = SchedulerKernel(
                [],
                self._pair,
                self._policy,
                orchestrator=self._orchestrator,
                config=self._config,
                obs=self.obs,
                driver=self.driver,
            )
        self._next_job_id = (max(self.kernel.jobs) + 1) if self.kernel.jobs else 0
        self.driver.on_epoch_finished = self._on_epoch_finished
        self.kernel.activity_sink = self._on_activity
        if self.state is not None:
            self.kernel.executor.wal = self.state.wal
        if self._orchestrator is not None:
            self.driver.schedule_after(
                self.kernel.config.orchestrator_interval,
                self._orchestrator_tick,
                tag=("orch",),
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on %s:%d", self.host, self.port)

    def _rearm_restored_kernel(self) -> None:
        """Wall-clock timers died with the old process: re-arm them.

        Completion re-arming bumps each job's completion epoch, so any
        notion of the old timers is superseded; a fresh scheduling epoch
        picks up whatever was pending.
        """
        for job in list(self.kernel.running.values()):
            self.kernel._reschedule_completion(job)
        if self.kernel.pending:
            self.kernel.trigger_schedule()

    def _replay_requests(self, from_seq: int) -> None:
        """Re-apply journaled requests the snapshot does not cover."""
        assert self.state is not None
        for entry in self.state.journal.entries_after(from_seq):
            op = entry.get("op")
            try:
                if op == "submit":
                    spec = protocol.spec_from_dict(entry["spec"])
                    if spec.job_id not in self.kernel.jobs:
                        job = self.kernel.register_job(spec)
                        self.kernel.admit_job(job)
                elif op == "cancel":
                    self.kernel.cancel_job(
                        entry["job_id"], cause=entry.get("cause", "user")
                    )
                elif op == "scale":
                    self._apply_scale(entry["job_id"], entry["workers"])
            except Exception:
                # a request that was applicable pre-kill may no longer
                # be (job finished in the snapshot, say); replay is
                # best-effort per entry, never fatal to recovery
                logger.exception("replaying journal entry %s failed", entry)
            self.replayed_requests += 1

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, *, final_snapshot: bool = True) -> None:
        """Graceful shutdown: stop accepting, snapshot, close feeds."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.state is not None and final_snapshot and self.kernel is not None:
            self.state.snapshot(self.kernel)
        for queue in list(self._subscribers):
            queue.put_nowait(None)  # sentinel: stream over
        if self.state is not None:
            self.state.close()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission; resolve once no pending or running work
        remains.  Returns False on timeout (daemon keeps draining)."""
        self.draining = True
        self._maybe_mark_drained()
        try:
            await asyncio.wait_for(self._drained.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------------
    # kernel hooks
    # ------------------------------------------------------------------
    def _on_epoch_finished(self) -> None:
        self._epochs += 1
        self._epochs_since_snapshot += 1
        if (
            self.state is not None
            and self._epochs_since_snapshot >= self.snapshot_every_epochs
        ):
            self.state.snapshot(self.kernel)
            self._epochs_since_snapshot = 0
        self._maybe_mark_drained()

    def _maybe_mark_drained(self) -> None:
        if (
            self.draining
            and not self.kernel.pending
            and not self.kernel.running
        ):
            self._drained.set()

    def _on_activity(self, activity, trace_args) -> None:
        """Kernel activity sink: latency accounting + subscriber fan-out."""
        if activity.kind is EventKind.START:
            wall = self._submit_walls.pop(activity.job_id, None)
            if wall is not None:
                self.obs.registry.histogram(
                    "serve.submit_to_scheduled_s"
                ).observe(self._loop.time() - wall)
        if activity.kind is EventKind.FINISH:
            self._maybe_mark_drained()
        if not self._subscribers:
            return
        event = {
            "ts": activity.time,
            "kind": activity.kind.value,
            "job_id": activity.job_id,
            "detail": activity.detail,
        }
        if trace_args:
            event.update(trace_args)
        for queue in self._subscribers:
            if queue.full():
                try:
                    queue.get_nowait()  # drop oldest, never block
                except asyncio.QueueEmpty:
                    pass
                self.obs.registry.counter("serve.events_dropped").inc()
            queue.put_nowait(event)

    def _orchestrator_tick(self) -> None:
        self.kernel.run_orchestrator_epoch()
        self.driver.schedule_after(
            self.kernel.config.orchestrator_interval,
            self._orchestrator_tick,
            tag=("orch",),
        )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    ConnectionResetError,
                    asyncio.IncompleteReadError,
                    asyncio.CancelledError,
                ):
                    break
                if not line:
                    break
                if len(line) > protocol.MAX_LINE_BYTES:
                    writer.write(protocol.encode(
                        protocol.err(None, "frame_too_large")
                    ))
                    break
                try:
                    request = protocol.decode_line(line)
                except protocol.ProtocolError as exc:
                    writer.write(protocol.encode(
                        protocol.err(None, "bad_request", str(exc))
                    ))
                    await writer.drain()
                    continue
                request_id = request.get("id")
                op = request.get("op")
                if op == "subscribe":
                    await self._stream_events(request_id, writer)
                    break
                if op == "drain":
                    done = await self.drain(request.get("timeout"))
                    response = protocol.ok(
                        request_id, drained=done, draining=True
                    )
                elif op == "shutdown":
                    self.shutdown_requested.set()
                    response = protocol.ok(request_id, shutting_down=True)
                else:
                    response = self._dispatch(op, request_id, request)
                writer.write(protocol.encode(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(self, op, request_id, request) -> dict:
        self.obs.registry.counter("serve.requests", op=str(op)).inc()
        try:
            if op == "ping":
                return protocol.ok(
                    request_id, now=self.kernel.now, draining=self.draining
                )
            if op == "submit":
                return self._op_submit(request_id, request)
            if op == "query":
                return self._op_query(request_id, request)
            if op == "cancel":
                return self._op_cancel(request_id, request)
            if op == "scale":
                return self._op_scale(request_id, request)
            if op == "stats":
                return self._op_stats(request_id)
            return protocol.err(request_id, "unknown_op", f"no op {op!r}")
        except protocol.ProtocolError as exc:
            return protocol.err(request_id, "bad_request", str(exc))
        except Exception as exc:  # one bad request must not kill the daemon
            logger.exception("op %r failed", op)
            self.obs.registry.counter("serve.op_errors", op=str(op)).inc()
            return protocol.err(request_id, "internal", str(exc))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_submit(self, request_id, request) -> dict:
        if self.draining:
            return protocol.err(request_id, "draining")
        if len(self.kernel.pending) >= self.max_pending:
            self.obs.registry.counter("serve.rejected").inc()
            return protocol.err(
                request_id, "queue_full",
                f"pending queue at max_pending={self.max_pending}",
            )
        fields = request.get("spec")
        if not isinstance(fields, dict):
            return protocol.err(request_id, "bad_request", "missing 'spec'")
        job_id = self._next_job_id
        spec = protocol.spec_from_request(fields, job_id, self.kernel.now)
        self._next_job_id += 1
        if self.state is not None:
            self.state.journal.append(
                "submit", spec=protocol.spec_to_dict(spec)
            )
        job = self.kernel.register_job(spec)
        self._submit_walls[job_id] = self._loop.time()
        self.kernel.admit_job(job)
        return protocol.ok(request_id, job_id=job_id, submit_time=spec.submit_time)

    def _op_query(self, request_id, request) -> dict:
        job_id = request.get("job_id")
        if job_id is None:
            counts = {
                "pending": len(self.kernel.pending),
                "running": len(self.kernel.running),
                "finished": sum(
                    1 for j in self.kernel.jobs.values()
                    if j.status is JobStatus.FINISHED
                ),
                "epochs": self._epochs,
                "plans_applied": self.kernel.executor.plans_applied,
                "now": self.kernel.now,
                "draining": self.draining,
            }
            return protocol.ok(request_id, **counts)
        job = self.kernel.jobs.get(job_id)
        if job is None:
            return protocol.err(request_id, "unknown_job", f"job {job_id}")
        return protocol.ok(
            request_id,
            job_id=job_id,
            status=job.status.name.lower(),
            workers=job.total_workers,
            remaining_work=job.remaining_work,
            submit_time=job.spec.submit_time,
            start_time=job.first_start_time,
            finish_time=job.finish_time,
        )

    def _op_cancel(self, request_id, request) -> dict:
        job_id = request.get("job_id")
        if not isinstance(job_id, int):
            return protocol.err(request_id, "bad_request", "missing job_id")
        if self.state is not None:
            self.state.journal.append("cancel", job_id=job_id)
        cancelled = self.kernel.cancel_job(job_id)
        self._submit_walls.pop(job_id, None)
        self._maybe_mark_drained()
        return protocol.ok(request_id, job_id=job_id, cancelled=cancelled)

    def _op_scale(self, request_id, request) -> dict:
        job_id = request.get("job_id")
        workers = request.get("workers")
        if not isinstance(job_id, int) or not isinstance(workers, int):
            return protocol.err(
                request_id, "bad_request", "scale needs job_id and workers"
            )
        if self.state is not None:
            self.state.journal.append("scale", job_id=job_id, workers=workers)
        try:
            result = self._apply_scale(job_id, workers)
        except KeyError:
            return protocol.err(request_id, "unknown_job", f"job {job_id}")
        except ValueError as exc:
            return protocol.err(request_id, "bad_scale", str(exc))
        return protocol.ok(request_id, job_id=job_id, **result)

    def _apply_scale(self, job_id: int, workers: int) -> dict:
        """Scale a running elastic job toward ``workers``.

        Shrinking removes flexible workers immediately (never below the
        base demand); growing is a *request* — the next epoch's policy
        decides, exactly as it does for every other elastic job.
        """
        job = self.kernel.jobs[job_id]
        if job_id not in self.kernel.running:
            raise ValueError("job is not running")
        if not job.elastic:
            raise ValueError("job is not elastic")
        if workers < job.spec.min_workers:
            raise ValueError(
                f"cannot scale below base demand {job.spec.min_workers}"
            )
        current = job.total_workers
        if workers < current:
            to_remove = current - workers
            removals: Dict[str, int] = {}
            for sid in sorted(job.flex_placement):
                if to_remove == 0:
                    break
                take = min(job.flex_placement[sid], to_remove)
                removals[sid] = take
                to_remove -= take
            if removals:
                self.kernel.scale_in_worker_counts(job, removals)
            return {"workers": job.total_workers, "applied": "scale_in"}
        if workers > current:
            # growth is the policy's call: record the wish, run an epoch
            self.kernel.trigger_schedule()
            return {"workers": current, "applied": "requested"}
        return {"workers": current, "applied": "noop"}

    def _op_stats(self, request_id) -> dict:
        snap = self.obs.registry.snapshot()
        return protocol.ok(
            request_id,
            now=self.kernel.now,
            epochs=self._epochs,
            epochs_skipped=self.kernel._epochs_skipped,
            plans_applied=self.kernel.executor.plans_applied,
            pending=len(self.kernel.pending),
            running=len(self.kernel.running),
            jobs=len(self.kernel.jobs),
            draining=self.draining,
            timers_armed=self.driver.timers_armed,
            callback_errors=self.driver.callback_errors,
            recovered_jobs=self.recovered_jobs,
            replayed_requests=self.replayed_requests,
            snapshots_written=(
                self.state.snapshots_written if self.state else 0
            ),
            wal_appended=(self.state.wal.appended if self.state else 0),
            metrics=snap,
        )

    # ------------------------------------------------------------------
    # event streaming
    # ------------------------------------------------------------------
    async def _stream_events(self, request_id, writer) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIBER_QUEUE)
        self._subscribers.append(queue)
        writer.write(protocol.encode(protocol.ok(request_id, subscribed=True)))
        try:
            await writer.drain()
            while True:
                event = await queue.get()
                if event is None:  # shutdown sentinel
                    break
                writer.write(protocol.encode(event))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._subscribers.remove(queue)
