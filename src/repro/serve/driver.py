"""The wall-clock :class:`~repro.core.kernel.Driver`.

Maps kernel time onto an asyncio event loop: ``now`` is elapsed loop
time since binding, scaled by ``time_scale`` (kernel seconds per wall
second), and ``schedule`` arms ``loop.call_later`` timers.  A scale of
60 runs a day of kernel time in 24 wall minutes — handy for demos and
load tests; production serving uses 1.0.

The driver is pickle-friendly so a kernel snapshot can embed it: the
loop and armed timers are dropped on pickling (timers die with the
process anyway) and the current kernel time is carried over, so a
restored daemon resumes with time continuing monotonically from where
the snapshot was taken.  The service re-arms completion timers and the
epoch tick after :meth:`bind`-ing the restored driver to its loop.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.kernel import Driver
from repro.obs import get_logger

logger = get_logger("serve.driver")


class WallClockDriver(Driver):
    """Kernel time = ``start_at + (loop.time() - t0) * time_scale``."""

    def __init__(self, time_scale: float = 1.0, start_at: float = 0.0):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = float(time_scale)
        self._start_at = float(start_at)
        self._loop = None
        self._t0: Optional[float] = None
        #: timers armed since binding (observability, not control flow)
        self.timers_armed = 0
        #: kernel callbacks that raised (each is logged and swallowed —
        #: one bad event must not kill the daemon)
        self.callback_errors = 0
        #: service hook, invoked after every scheduling epoch
        self.on_epoch_finished: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    def bind(self, loop) -> None:
        """Attach to a running event loop; kernel time resumes from
        ``start_at`` (0 for a fresh daemon, the snapshot instant for a
        restored one)."""
        self._loop = loop
        self._t0 = loop.time()

    @property
    def bound(self) -> bool:
        return self._loop is not None

    # ------------------------------------------------------------------
    # the Driver protocol
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._loop is None:
            return self._start_at
        return self._start_at + (self._loop.time() - self._t0) * self.time_scale

    def schedule(
        self, when: float, callback: Callable[[], None], tag=None
    ) -> None:
        if self._loop is None:
            raise RuntimeError(
                "WallClockDriver.schedule before bind(); the daemon must "
                "bind the driver to its event loop first"
            )
        delay = max(0.0, (when - self.now) / self.time_scale)
        self.timers_armed += 1
        self._loop.call_later(delay, self._fire, callback, tag)

    def schedule_after(
        self, delay: float, callback: Callable[[], None], tag=None
    ) -> None:
        self.schedule(self.now + delay, callback, tag=tag)

    def epoch_finished(self) -> None:
        if self.on_epoch_finished is not None:
            self.on_epoch_finished()

    # ------------------------------------------------------------------
    def _fire(self, callback: Callable[[], None], tag) -> None:
        try:
            callback()
        except Exception:
            # The simulator lets exceptions kill the run (a bug should
            # fail loudly in a batch job); a daemon must stay up and
            # keep serving the jobs that are fine.
            self.callback_errors += 1
            logger.exception("kernel event %r raised", tag)

    # ------------------------------------------------------------------
    # pickling (kernel snapshots embed the driver)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {"time_scale": self.time_scale, "start_at": self.now}

    def __setstate__(self, state):
        self.__init__(
            time_scale=state["time_scale"], start_at=state["start_at"]
        )
