"""Durability for the serving daemon: request journal + kernel snapshots.

The simulator's recovery story (snapshot + plan WAL + deterministic
re-execution of the event heap) does not transfer whole to a daemon:
requests arrive from the outside world and cannot be re-derived.  The
serving layer therefore persists *three* artifacts in the state
directory:

* ``requests.jsonl`` — an append-only, fsynced journal of every acked
  state-changing request (submit / cancel / scale), written *before*
  the ack leaves the process.  This is the daemon's source of truth for
  work accepted after the newest snapshot.
* ``snapshot-NNNNNN.ckpt`` — the whole kernel, captured through the
  recovery codec (:mod:`repro.recovery.codec`,
  :func:`repro.recovery.state.capture_payload` — unchanged) at epoch
  boundaries and on graceful shutdown, stamped with the request
  sequence it covers.
* ``wal-genN.jsonl`` — a :class:`~repro.recovery.wal.PlanWAL` attached
  to the kernel's plan executor, one segment per daemon generation.
  Within a generation the usual write-ahead guarantees hold (every
  committed plan journaled before its first effect, digest-checked,
  replay-as-noop); across a kill, plans whose effects post-date the
  newest snapshot are re-derived by replaying the journaled requests,
  so no acked work — and therefore no committed plan's outcome — is
  lost.  Segments are never rewritten: the full WAL history is the
  audit trail of every plan the daemon ever committed.

Restart = load newest readable snapshot (torn snapshots skipped, exactly
like :meth:`repro.recovery.manager.RecoveryManager.recover`), rebind a
fresh wall-clock driver at the snapshot's kernel time, re-arm completion
timers for running jobs, then replay journaled requests with
``seq > snapshot.request_seq`` through the normal admission paths.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Tuple

from repro.obs import get_logger
from repro.recovery.codec import SnapshotCodec, SnapshotError
from repro.recovery.state import capture_payload
from repro.recovery.wal import PlanWAL
from repro.rm.containers import set_container_id_state

logger = get_logger("serve.state")

_SNAP_PREFIX = "snapshot-"
_SNAP_SUFFIX = ".ckpt"


class RequestJournal:
    """Append-only fsynced JSONL journal of acked requests."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._fh = None
        self.seq = 0
        self._entries: List[dict] = []
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            try:
                entry = json.loads(line)
            except ValueError:
                if i == len(lines) - 1:
                    # torn tail: the request it described was never
                    # acked, so dropping it is exactly correct
                    logger.warning(
                        "%s: dropping torn journal tail", self.path
                    )
                    break
                raise
            self._entries.append(entry)
        self.seq = len(self._entries)

    def entries_after(self, seq: int) -> List[dict]:
        return self._entries[seq:]

    def append(self, op: str, **fields) -> int:
        """Durably record one request; returns its sequence number."""
        if self._fh is None:
            self._fh = open(self.path, "ab")
        self.seq += 1
        entry = {"seq": self.seq, "op": op, **fields}
        self._entries.append(entry)
        self._fh.write(
            (json.dumps(entry, separators=(",", ":")) + "\n").encode("utf-8")
        )
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return self.seq

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ServeState:
    """The daemon's durable-state manager (all three artifacts)."""

    def __init__(self, directory, keep_snapshots: int = 3):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_snapshots = keep_snapshots
        self.journal = RequestJournal(self.directory / "requests.jsonl")
        self.generation = self._next_generation()
        #: the plan WAL segment for THIS daemon generation; attached to
        #: the kernel's executor by the service
        self.wal = PlanWAL(self.directory / f"wal-gen{self.generation}.jsonl")
        self._snap_seq = self._newest_snapshot_seq()
        self.snapshots_written = 0

    # ------------------------------------------------------------------
    def _next_generation(self) -> int:
        gens = [
            int(p.stem.split("wal-gen")[1])
            for p in self.directory.glob("wal-gen*.jsonl")
        ]
        return (max(gens) + 1) if gens else 0

    def _snapshots(self) -> List[Path]:
        return sorted(self.directory.glob(f"{_SNAP_PREFIX}*{_SNAP_SUFFIX}"))

    def _newest_snapshot_seq(self) -> int:
        snaps = self._snapshots()
        if not snaps:
            return 0
        return int(snaps[-1].name[len(_SNAP_PREFIX):-len(_SNAP_SUFFIX)])

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self, kernel) -> Path:
        """Capture the kernel post-epoch; prune old snapshots."""
        payload = capture_payload(kernel)
        payload["request_seq"] = self.journal.seq
        payload["generation"] = self.generation
        self._snap_seq += 1
        path = (
            self.directory
            / f"{_SNAP_PREFIX}{self._snap_seq:06d}{_SNAP_SUFFIX}"
        )
        SnapshotCodec.dump(payload, path)
        self.snapshots_written += 1
        for old in self._snapshots()[: -self.keep_snapshots]:
            old.unlink()
        return path

    def load_kernel(self) -> Optional[Tuple[object, int]]:
        """Restore the newest readable snapshot.

        Returns ``(kernel, request_seq)`` or None when no usable
        snapshot exists (fresh state dir, or every snapshot torn —
        then the journal alone rebuilds the world from empty).
        Torn/corrupt snapshots fall back to the previous one, matching
        the simulator's recovery manager.
        """
        for path in reversed(self._snapshots()):
            try:
                payload = SnapshotCodec.load(path)
            except SnapshotError as exc:
                logger.warning("skipping snapshot %s: %s", path.name, exc)
                continue
            kernel = payload["sim"]
            set_container_id_state(payload["container_seq"])
            # serve-side rewiring (the engine-heap rebind the simulator
            # does has no analogue here: wall-clock timers died with the
            # old process and are re-armed by the service)
            kernel._tick_pending = False
            if kernel.obs.phases.tracer is not None:
                kernel.obs.phases.clock = lambda: kernel.now
            return kernel, int(payload.get("request_seq", 0))
        return None

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.journal.close()
        if self.wal is not None:
            self.wal.close()
