"""Real-time serving of the scheduling kernel (ROADMAP item 2).

``repro serve`` promotes the reproduction from a batch simulator into a
long-running scheduler daemon: the same clock-agnostic
:class:`~repro.core.kernel.SchedulerKernel` the simulator drives with a
discrete-event engine runs here on a :class:`WallClockDriver` mapped to
an asyncio event loop, fronted by a line-delimited-JSON TCP API
(submit / scale / query / cancel / stats / drain + a streaming event
feed).  See docs/SERVING.md for the API surface and the operational
knobs (epoch batching, admission control, durability).
"""

from repro.serve.client import ServeClient
from repro.serve.driver import WallClockDriver
from repro.serve.service import SchedulerService

__all__ = ["SchedulerService", "ServeClient", "WallClockDriver"]
