"""Shape-comparison reports: measured metrics vs the paper's numbers.

The reproduction's promise is shape fidelity, so this module turns a set
of measured :class:`~repro.simulator.metrics.SimulationMetrics` into a
verdict table against :mod:`repro.paper`: for each claim, the paper's
ratio, the measured ratio, and whether the direction (and roughly the
magnitude) holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import paper
from repro.simulator.metrics import SimulationMetrics, reduction


@dataclass(frozen=True)
class ShapeCheck:
    """One claim's verdict.

    Attributes:
        name: Human-readable claim.
        paper_value: The published ratio/number.
        measured: What this run produced.
        holds: Direction matches (measured on the same side of 1.0 /
            same ordering).
        within_band: Additionally within ``band`` of the paper's
            magnitude (informational; shape reproduction does not
            require it).
    """

    name: str
    paper_value: float
    measured: float
    holds: bool
    within_band: bool

    def __str__(self) -> str:
        mark = "+" if self.holds else "!"
        return (
            f"[{mark}] {self.name}: paper {self.paper_value:.2f}, "
            f"measured {self.measured:.2f}"
        )


def _ratio_check(
    name: str, paper_value: float, measured: float, band: float
) -> ShapeCheck:
    holds = (measured > 1.0) == (paper_value > 1.0)
    within = (
        abs(measured - paper_value) <= band * paper_value
        if paper_value
        else False
    )
    return ShapeCheck(name, paper_value, measured, holds, within)


def compare_to_paper(
    results: Dict[str, SimulationMetrics], band: float = 0.75
) -> List[ShapeCheck]:
    """Check the Table 5 headline shapes against a results dict.

    ``results`` maps scheme keys (``"baseline"``, ``"lyra"``,
    ``"lyra_loaning"``, ``"lyra_scaling"``, ...) to measured metrics;
    only the claims whose schemes are present are checked.
    """
    checks: List[ShapeCheck] = []
    baseline = results.get("baseline")
    if baseline is None:
        raise ValueError("results must include the 'baseline' scheme")

    def red(metric: str, other: SimulationMetrics) -> float:
        if metric == "queuing":
            return reduction(
                baseline.queuing_summary().mean, other.queuing_summary().mean
            )
        return reduction(baseline.jct_summary().mean, other.jct_summary().mean)

    pairs = [
        ("lyra", "queuing_reduction_basic", "queuing",
         "Lyra queuing reduction (Basic)"),
        ("lyra", "jct_reduction_basic", "jct",
         "Lyra JCT reduction (Basic)"),
        ("lyra_loaning", "queuing_reduction_loaning", "queuing",
         "loaning-only queuing reduction"),
        ("lyra_loaning", "jct_reduction_loaning", "jct",
         "loaning-only JCT reduction"),
        ("lyra_scaling", "queuing_reduction_scaling", "queuing",
         "scaling-only queuing reduction"),
        ("lyra_scaling", "jct_reduction_scaling", "jct",
         "scaling-only JCT reduction"),
    ]
    for scheme, headline, metric, label in pairs:
        metrics = results.get(scheme)
        if metrics is None:
            continue
        checks.append(
            _ratio_check(label, paper.HEADLINES[headline],
                         red(metric, metrics), band)
        )

    lyra = results.get("lyra")
    if lyra is not None:
        gain = lyra.overall_usage.mean() / max(
            1e-9, baseline.overall_usage.mean()
        )
        checks.append(
            _ratio_check(
                "overall usage improvement (Basic)",
                1.0 + paper.HEADLINES["usage_improvement_basic"],
                gain,
                band,
            )
        )
    return checks


def render_report(checks: List[ShapeCheck]) -> str:
    """A printable verdict table plus a one-line summary."""
    lines = [str(check) for check in checks]
    holding = sum(1 for c in checks if c.holds)
    lines.append(
        f"shape verdict: {holding}/{len(checks)} claims hold"
        if checks
        else "no claims checked"
    )
    return "\n".join(lines)
