"""The §3 job profiler: online running-time estimation."""

from repro.profiler.profiler import JobProfiler

__all__ = ["JobProfiler"]
