"""The job profiler (§3): running-time estimates for enqueued jobs.

Lyra's architecture puts a *job profiler* between the queue and the
scheduler: "The job profiler estimates the workload after jobs are
enqueued", and §5.2 notes the running time "can be predicted with
profiling and ML methods".  The evaluation shows the scheduler tolerates
substantial estimation error (Table 9), so a compact model suffices.

This profiler learns online from completed jobs:

* per model-family running-time statistics in log space (a family mean
  with shrinkage toward the global mean while samples are few);
* a ridge regression on job shape — log(max workers), GPUs per worker,
  elasticity — refining the family estimate, solved in closed form with
  NumPy on every refresh.

``predict`` never fails: with no history at all it falls back to the
prior; the estimate quality then improves as completions accumulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.job import JobSpec

#: Prior mean running time used before any job completes (seconds).
_PRIOR_DURATION = 1800.0
#: Pseudo-count of the prior when shrinking family means.
_SHRINKAGE = 4.0


@dataclass
class _FamilyStats:
    count: int = 0
    log_sum: float = 0.0

    def mean_log(self, prior_log: float) -> float:
        """Shrunk family mean in log space."""
        return (self.log_sum + _SHRINKAGE * prior_log) / (
            self.count + _SHRINKAGE
        )


class JobProfiler:
    """Online running-time predictor over completed jobs."""

    def __init__(self, ridge: float = 1.0, refit_every: int = 16):
        if ridge <= 0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        self.ridge = ridge
        self.refit_every = refit_every
        self._families: Dict[str, _FamilyStats] = {}
        self._rows: List[np.ndarray] = []
        self._targets: List[float] = []
        self._weights: Optional[np.ndarray] = None
        self._observed = 0

    # ------------------------------------------------------------------
    @property
    def observations(self) -> int:
        return self._observed

    def _global_log(self) -> float:
        total = sum(f.count for f in self._families.values())
        if total == 0:
            return math.log(_PRIOR_DURATION)
        log_sum = sum(f.log_sum for f in self._families.values())
        return log_sum / total

    def _features(self, spec: JobSpec) -> np.ndarray:
        return np.array(
            [
                1.0,
                math.log(spec.max_workers),
                float(spec.gpus_per_worker),
                1.0 if spec.elastic else 0.0,
            ]
        )

    # ------------------------------------------------------------------
    def observe(self, spec: JobSpec, duration: float) -> None:
        """Record a completed job's true running time (at max demand)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        stats = self._families.setdefault(spec.model_family, _FamilyStats())
        stats.count += 1
        log_duration = math.log(duration)
        stats.log_sum += log_duration
        self._observed += 1
        # the regression predicts the residual over the family mean
        residual = log_duration - stats.mean_log(self._global_log())
        self._rows.append(self._features(spec))
        self._targets.append(residual)
        if self._observed % self.refit_every == 0:
            self._refit()

    def _refit(self) -> None:
        x = np.asarray(self._rows)
        y = np.asarray(self._targets)
        dim = x.shape[1]
        gram = x.T @ x + self.ridge * np.eye(dim)
        self._weights = np.linalg.solve(gram, x.T @ y)

    # ------------------------------------------------------------------
    def predict(self, spec: JobSpec) -> float:
        """Estimated running time (seconds, at maximum demand)."""
        prior_log = self._global_log()
        stats = self._families.get(spec.model_family)
        base_log = stats.mean_log(prior_log) if stats else prior_log
        if self._weights is not None:
            base_log += float(self._features(spec) @ self._weights)
        return float(math.exp(base_log))

    def estimate_error(self, spec: JobSpec) -> float:
        """Multiplier ``predicted / actual`` — what the scheduler sees.

        This is the organic counterpart of the Table 9 synthetic error
        injection: the simulator sets each pending job's visible
        estimate to ``actual * estimate_error``.
        """
        return self.predict(spec) / spec.duration

    def mean_absolute_log_error(self, specs) -> float:
        """Evaluation helper: mean |log(pred / actual)| over specs."""
        errors = [
            abs(math.log(max(1e-9, self.estimate_error(spec))))
            for spec in specs
        ]
        return float(np.mean(errors)) if errors else math.nan
